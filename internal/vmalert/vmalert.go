// Package vmalert implements the metric alerting component of the paper's
// pipeline: "vmalert, a component of the VictoriaMetrics cluster, queries
// the database continuously with predefined alerting rules created by
// NERSC. If the return value is true, vmalert sends an event to
// AlertManager." Rules are PromQL threshold expressions with a `for:`
// hold, identical in shape to the Loki Ruler's.
package vmalert

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/promql"
	"shastamon/internal/ruler"
	"shastamon/internal/tsdb"
)

// Rule is one metric alerting rule.
type Rule struct {
	Name        string
	Expr        string // PromQL expression; any returned sample is "true"
	For         time.Duration
	Labels      map[string]string
	Annotations map[string]string
}

// RecordingRule periodically evaluates an expression and writes the
// result back to the TSDB under a new metric name — vmalert's `record:`
// rules, used to precompute expensive aggregates for dashboards.
type RecordingRule struct {
	Record string // new metric name
	Expr   string
	Labels map[string]string // added to every recorded sample
}

type compiledRule struct {
	rule Rule
	expr promql.Expr
}

type alertState struct {
	activeSince time.Time
	firing      bool
	labels      labels.Labels
	value       float64
}

type compiledRecording struct {
	rule RecordingRule
	expr promql.Expr
}

// VMAlert evaluates rules against a PromQL engine.
type VMAlert struct {
	engine   *promql.Engine
	notifier ruler.Notifier
	now      func() time.Time
	tracer   *obs.Tracer

	reg      *obs.Registry
	evalsCtr *obs.Counter
	evalDur  *obs.Histogram
	firedVec *obs.CounterVec

	mu         sync.Mutex
	rules      []compiledRule
	state      []map[labels.Fingerprint]*alertState
	recordings []compiledRecording
	recordDB   *tsdb.DB
	evals      int64
}

// New compiles rules and returns a VMAlert.
func New(engine *promql.Engine, notifier ruler.Notifier, now func() time.Time, rules ...Rule) (*VMAlert, error) {
	if engine == nil || notifier == nil {
		return nil, fmt.Errorf("vmalert: engine and notifier required")
	}
	if now == nil {
		now = time.Now
	}
	v := &VMAlert{engine: engine, notifier: notifier, now: now, reg: obs.NewRegistry()}
	v.evalsCtr = v.reg.Counter(obs.Namespace+"vmalert_evaluations_total",
		"Rule evaluation rounds run.")
	v.evalDur = v.reg.Histogram(obs.Namespace+"vmalert_evaluation_duration_seconds",
		"Wall time of one full evaluation round.", obs.DefBuckets)
	v.firedVec = v.reg.CounterVec(obs.Namespace+"vmalert_alerts_fired_total",
		"Alerts transitioned to firing, by rule.", "rule")
	seen := map[string]bool{}
	for _, rule := range rules {
		if rule.Name == "" {
			return nil, fmt.Errorf("vmalert: rule needs a name: %+v", rule)
		}
		if seen[rule.Name] {
			return nil, fmt.Errorf("vmalert: duplicate rule %q", rule.Name)
		}
		seen[rule.Name] = true
		expr, err := promql.Parse(rule.Expr)
		if err != nil {
			return nil, fmt.Errorf("vmalert: rule %q: %w", rule.Name, err)
		}
		v.rules = append(v.rules, compiledRule{rule: rule, expr: expr})
		v.state = append(v.state, map[labels.Fingerprint]*alertState{})
	}
	return v, nil
}

// Metrics exposes vmalert's self-monitoring registry.
func (v *VMAlert) Metrics() *obs.Registry { return v.reg }

// SetTracer attaches an event tracer; firing alerts record a
// "vmalert.fire" stage on the trace of the newest event from the same
// component (keyed by the xname label).
func (v *VMAlert) SetTracer(t *obs.Tracer) { v.tracer = t }

// AddRecordingRules registers recording rules that write their results
// into db on every evaluation round.
func (v *VMAlert) AddRecordingRules(db *tsdb.DB, rules ...RecordingRule) error {
	if db == nil {
		return fmt.Errorf("vmalert: recording rules need a db")
	}
	compiled := make([]compiledRecording, 0, len(rules))
	for _, r := range rules {
		if r.Record == "" {
			return fmt.Errorf("vmalert: recording rule needs a name: %+v", r)
		}
		expr, err := promql.Parse(r.Expr)
		if err != nil {
			return fmt.Errorf("vmalert: recording rule %q: %w", r.Record, err)
		}
		compiled = append(compiled, compiledRecording{rule: r, expr: expr})
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.recordDB = db
	v.recordings = append(v.recordings, compiled...)
	return nil
}

// EvalOnce evaluates every rule at the current time and notifies state
// transitions. It returns the alerts sent. Recording rules run first so
// alerting rules can reference their output in the same round.
func (v *VMAlert) EvalOnce() ([]alertmanager.Alert, error) {
	now := v.now()
	ms := now.UnixMilli()
	t0 := time.Now()
	v.mu.Lock()
	defer func() {
		v.mu.Unlock()
		v.evalDur.Observe(time.Since(t0).Seconds())
	}()
	v.evals++
	v.evalsCtr.Inc()
	for _, cr := range v.recordings {
		vec, err := v.engine.Instant(cr.expr, ms)
		if err != nil {
			return nil, fmt.Errorf("vmalert: recording rule %q: %w", cr.rule.Record, err)
		}
		for _, s := range vec {
			b := labels.NewBuilder(s.Labels)
			for k, val := range cr.rule.Labels {
				b.Set(k, val)
			}
			if err := v.recordDB.AppendMetric(cr.rule.Record, b.Labels(), ms, s.V); err != nil && !errors.Is(err, tsdb.ErrOutOfOrder) {
				return nil, err
			}
		}
	}
	var sent []alertmanager.Alert
	for i, cr := range v.rules {
		vec, err := v.engine.Instant(cr.expr, ms)
		if err != nil {
			return sent, fmt.Errorf("vmalert: rule %q: %w", cr.rule.Name, err)
		}
		active := map[labels.Fingerprint]bool{}
		for _, sample := range vec {
			b := labels.NewBuilder(sample.Labels)
			b.Set("alertname", cr.rule.Name)
			for k, val := range cr.rule.Labels {
				b.Set(k, val)
			}
			alertLbls := b.Labels()
			fp := alertLbls.Fingerprint()
			active[fp] = true
			st, ok := v.state[i][fp]
			if !ok {
				st = &alertState{activeSince: now, labels: alertLbls}
				v.state[i][fp] = st
			}
			st.value = sample.V
			if !st.firing && now.Sub(st.activeSince) >= cr.rule.For {
				st.firing = true
				sent = append(sent, v.buildAlert(cr.rule, st, now, time.Time{}))
				v.firedVec.With(cr.rule.Name).Inc()
				// Timed fire span; alerts without a pre-existing event trace
				// (meta-alerts about the pipeline itself) mint one here so
				// delivery spans and latency close-out attach to something.
				key := vmTraceKey(alertLbls)
				end := now.Add(time.Since(t0))
				if id := v.tracer.SpanByKey(key, "vmalert.fire", now, end, cr.rule.Name); id == "" && key != "" {
					id = v.tracer.Start(key, now, "vmalert:"+cr.rule.Name)
					v.tracer.Span(id, "vmalert.fire", now, end, cr.rule.Name)
				}
			}
		}
		for fp, st := range v.state[i] {
			if active[fp] {
				continue
			}
			if st.firing {
				sent = append(sent, v.buildAlert(cr.rule, st, st.activeSince, now))
			}
			delete(v.state[i], fp)
		}
	}
	if len(sent) > 0 {
		v.notifier.Receive(sent...)
	}
	return sent, nil
}

// vmTraceKey extracts the trace correlation key from an alert label set.
// Hardware alerts carry an xname (or the Context stream label); the
// built-in meta-alerts about the pipeline itself are keyed by whichever
// subsystem dimension they fire on.
func vmTraceKey(ls labels.Labels) string {
	for _, name := range []string{"xname", "Context", "dependency", "target", "topic", "stage", "rule"} {
		if val := ls.Get(name); val != "" {
			return val
		}
	}
	return ""
}

func (v *VMAlert) buildAlert(rule Rule, st *alertState, startsAt, endsAt time.Time) alertmanager.Alert {
	ann := make(map[string]string, len(rule.Annotations))
	for k, val := range rule.Annotations {
		ann[k] = ruler.ExpandTemplate(val, st.labels, st.value)
	}
	return alertmanager.Alert{Labels: st.labels, Annotations: ann, StartsAt: startsAt, EndsAt: endsAt}
}

// Evals returns the evaluation-round counter.
func (v *VMAlert) Evals() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.evals
}

// Run evaluates on the interval until stop closes.
func (v *VMAlert) Run(interval time.Duration, stop <-chan struct{}) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-t.C:
			if _, err := v.EvalOnce(); err != nil {
				return err
			}
		}
	}
}
