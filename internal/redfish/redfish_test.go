package redfish

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLeakEventMatchesPaperFig2(t *testing.T) {
	ts := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	e := LeakEvent(ts, "A", "Front")
	if e.Severity != SeverityWarning {
		t.Fatalf("severity %q", e.Severity)
	}
	if e.Message != "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak." {
		t.Fatalf("message %q", e.Message)
	}
	if e.MessageID != "CrayAlerts.1.0.CabinetLeakDetected" {
		t.Fatalf("message id %q", e.MessageID)
	}
	if len(e.MessageArgs) != 1 || e.MessageArgs[0] != "A, Front" {
		t.Fatalf("args %v", e.MessageArgs)
	}
	if e.OriginOfCondition.OdataID != "/redfish/v1/Chassis/Enclosure" {
		t.Fatalf("origin %+v", e.OriginOfCondition)
	}
	got, err := e.Timestamp()
	if err != nil || !got.Equal(ts) {
		t.Fatalf("%v %v", got, err)
	}
}

func TestPowerEventSeverity(t *testing.T) {
	off := PowerEvent(time.Now(), "x1000c1", "Off")
	if off.Severity != SeverityCritical {
		t.Fatalf("off severity %q", off.Severity)
	}
	on := PowerEvent(time.Now(), "x1000c1", "On")
	if on.Severity != SeverityOK {
		t.Fatalf("on severity %q", on.Severity)
	}
}

func TestPayloadJSONShape(t *testing.T) {
	ts := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	p := NewPayload(Record{Context: "x1203c1b0", Events: []Event{LeakEvent(ts, "A", "Front")}})
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]interface{}
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	metrics, ok := generic["metrics"].(map[string]interface{})
	if !ok {
		t.Fatalf("no metrics envelope: %s", data)
	}
	if _, ok := metrics["messages"].([]interface{}); !ok {
		t.Fatalf("no messages array: %s", data)
	}
	if !strings.Contains(string(data), `"EventTimestamp":"2022-03-03T01:47:57Z"`) {
		t.Fatalf("timestamp: %s", data)
	}
}

func TestParsePayloadErrors(t *testing.T) {
	if _, err := ParsePayload([]byte("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	p, err := ParsePayload([]byte(`{}`))
	if err != nil || len(p.Metrics.Messages) != 0 {
		t.Fatalf("%+v %v", p, err)
	}
}

func TestEventTimestampError(t *testing.T) {
	e := Event{EventTimestamp: "nope"}
	if _, err := e.Timestamp(); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}
