package chunkenc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func buildChunk(t *testing.T, n int, sealHead bool) *Chunk {
	t.Helper()
	c := New(Options{BlockSize: 256})
	for i := 0; i < n; i++ {
		e := Entry{Timestamp: int64(i) * 1e6, Line: fmt.Sprintf("line %04d payload-%d", i, i%7)}
		if err := c.Append(e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if sealHead {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func spillToFile(t *testing.T, c *Chunk, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	offs, err := c.WriteSpill(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkSpilled(path, offs); err != nil {
		t.Fatal(err)
	}
}

func entriesEqual(t *testing.T, a, b []Entry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("entry count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSpillRoundTrip: spill a sealed chunk, drop its payloads, read it
// back both through the live chunk (lazy disk reads) and a fresh
// OpenSpill — all three views must agree entry-for-entry.
func TestSpillRoundTrip(t *testing.T) {
	for _, sealHead := range []bool{true, false} {
		t.Run(fmt.Sprintf("sealHead=%v", sealHead), func(t *testing.T) {
			c := buildChunk(t, 200, sealHead)
			want, err := c.All(0, 1<<62)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "c.chk")
			spillToFile(t, c, path)
			if !c.Spilled() || c.SpillPath() != path {
				t.Fatalf("Spilled=%v path=%q", c.Spilled(), c.SpillPath())
			}
			for i, b := range c.blocks {
				if b.data != nil {
					t.Fatalf("block %d payload still resident after spill", i)
				}
			}
			got, err := c.All(0, 1<<62)
			if err != nil {
				t.Fatalf("lazy read-back: %v", err)
			}
			entriesEqual(t, got, want)

			re, err := OpenSpill(path)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := re.All(0, 1<<62)
			if err != nil {
				t.Fatalf("OpenSpill read-back: %v", err)
			}
			entriesEqual(t, got2, want)
			if re.Entries() != c.Entries() || re.RawBytes() != c.RawBytes() {
				t.Fatalf("counters: entries %d/%d raw %d/%d",
					re.Entries(), c.Entries(), re.RawBytes(), c.RawBytes())
			}
			remint, remaxt, _ := re.Bounds()
			cmint, cmaxt, _ := c.Bounds()
			if remint != cmint || remaxt != cmaxt {
				t.Fatalf("bounds: [%d,%d] vs [%d,%d]", remint, remaxt, cmint, cmaxt)
			}
		})
	}
}

// TestSpillThroughCache: a BlockCache in front of a spilled chunk serves
// the second read from memory (no disk dependency — prove it by deleting
// the file between reads).
func TestSpillThroughCache(t *testing.T) {
	c := buildChunk(t, 200, true)
	want, _ := c.All(0, 1<<62)
	path := filepath.Join(t.TempDir(), "c.chk")
	spillToFile(t, c, path)

	cache := NewBlockCache(1 << 20)
	var st IterStats
	it := c.StatsIterator(cache, 0, 1<<62, &st)
	var got []Entry
	for it.Next() {
		got = append(got, it.At())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	entriesEqual(t, got, want)
	if st.CacheMisses == 0 {
		t.Fatal("first pass did not miss the cache")
	}

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	st = IterStats{}
	it = c.StatsIterator(cache, 0, 1<<62, &st)
	got = got[:0]
	for it.Next() {
		got = append(got, it.At())
	}
	if it.Err() != nil {
		t.Fatalf("cached pass hit disk: %v", it.Err())
	}
	entriesEqual(t, got, want)
	if st.CacheHits == 0 || st.CacheMisses != 0 {
		t.Fatalf("second pass stats: %+v", st)
	}
}

// TestSpillCorruptPayloadDetected flips a byte inside a block payload: the
// lazy read must fail the CRC check, not return garbage.
func TestSpillCorruptPayloadDetected(t *testing.T) {
	c := buildChunk(t, 200, true)
	path := filepath.Join(t.TempDir(), "c.chk")
	spillToFile(t, c, path)

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[c.blocks[0].off] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c.All(0, 1<<62)
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("corrupt payload read: %v", err)
	}
}

func TestOpenSpillRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty.chk":   {},
		"magic.chk":   []byte("NOTSPILLxxxxxxxx"),
		"version.chk": append([]byte(spillMagic), 99),
		"short.chk":   append([]byte(spillMagic), spillVersion, 0x80),
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSpill(p); !errors.Is(err, ErrSpillCorrupt) {
			t.Fatalf("%s: err = %v, want ErrSpillCorrupt", name, err)
		}
	}
}

// TestSpillTruncatedFileDetected cuts the file mid-payload; OpenSpill must
// report corruption rather than a short chunk.
func TestSpillTruncatedFileDetected(t *testing.T) {
	c := buildChunk(t, 200, true)
	path := filepath.Join(t.TempDir(), "c.chk")
	spillToFile(t, c, path)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := c.blocks[0].off + int64(c.blocks[0].clen)/2
	if err := os.WriteFile(path, buf[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSpill(path); !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("truncated file: %v", err)
	}
}

func TestMarkSpilledOffsetMismatch(t *testing.T) {
	c := buildChunk(t, 200, true)
	if err := c.MarkSpilled("x.chk", make([]int64, len(c.blocks)+1)); err == nil {
		t.Fatal("offset-count mismatch accepted")
	}
}
