package main

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// selfDefaults is the curated set of self-monitoring queries -self runs
// when no -q is given: one line per shastamon_* concern, mirroring the
// dashboard's "Self" panels.
var selfDefaults = []string{
	`shastamon_core_records_forwarded_total`,
	`sum(shastamon_kafka_produced_total) by (topic)`,
	`sum(shastamon_ruler_alerts_fired_total) by (rule)`,
	`sum(shastamon_alertmanager_notifications_total) by (receiver, outcome)`,
	`sum(shastamon_detection_latency_seconds_count) by (rule)`,
	`max(shastamon_slo_burn_rate) by (rule)`,
	`max(shastamon_breaker_state) by (dependency)`,
	`max(shastamon_scrape_staleness_seconds) by (target)`,
	`sum(shastamon_dlq_records_total) by (topic)`,
}

// selfQueries expands the -self argument into PromQL queries without the
// operator hand-writing selectors: empty runs the curated default set, a
// bare family name gets the shastamon_ prefix, and anything that is not a
// bare metric name (it has braces, parens, spaces...) passes through as
// full PromQL.
func selfQueries(q string) []string {
	q = strings.TrimSpace(q)
	if q == "" {
		return selfDefaults
	}
	if isMetricName(q) {
		if !strings.HasPrefix(q, "shastamon_") {
			q = "shastamon_" + q
		}
	}
	return []string{q}
}

func isMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return len(s) > 0
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// querySelf runs each query as a PromQL instant query against the remote
// pipeline's /api/v1/query (the shastamon_* series land in the TSDB via
// the self-scrape job, so they answer on the metrics API, not the Loki
// one).
func querySelf(base, at, query string) error {
	end, err := time.Parse(time.RFC3339, at)
	if err != nil {
		return fmt.Errorf("bad -at: %w", err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, q := range selfQueries(query) {
		fmt.Printf("# %s\n", q)
		vals := url.Values{}
		vals.Set("query", q)
		vals.Set("time", strconv.FormatFloat(float64(end.UnixMilli())/1000, 'f', 3, 64))
		var resp struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Data   struct {
				Result []struct {
					Metric map[string]string `json:"metric"`
					Value  [2]interface{}    `json:"value"`
				} `json:"result"`
			} `json:"data"`
		}
		if err := getJSON(client, base+"/api/v1/query?"+vals.Encode(), &resp); err != nil {
			return err
		}
		if resp.Status != "success" {
			return fmt.Errorf("remote: %s", resp.Error)
		}
		for _, s := range resp.Data.Result {
			fmt.Printf("%s => %v\n", renderLabels(s.Metric), s.Value[1])
		}
		if len(resp.Data.Result) == 0 {
			fmt.Println("(empty vector)")
		}
	}
	return nil
}
