package loki

import (
	"strconv"

	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Metrics lazily builds the store's self-monitoring registry. Every family
// is derived at gather time from Stats(), so the ingest hot path pays no
// additional accounting cost.
func (s *Store) Metrics() *obs.Registry {
	s.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		reg.Collect(func() []promtext.Family {
			st := s.Stats()
			cs := s.CacheStats()
			shardPushes := promtext.Family{Name: obs.Namespace + "loki_shard_pushes_total",
				Help: "Stream pushes served, by lock-striped shard.", Type: "counter"}
			for i, n := range s.ShardPushes() {
				shardPushes = obs.Sample(shardPushes, float64(n), "shard", strconv.Itoa(i))
			}
			tenantStreams := promtext.Family{Name: obs.Namespace + "loki_tenant_streams",
				Help: "Live log streams, by tenant.", Type: "gauge"}
			tenantEntries := promtext.Family{Name: obs.Namespace + "loki_tenant_entries_total",
				Help: "Log entries accepted, by tenant.", Type: "counter"}
			tenantBytes := promtext.Family{Name: obs.Namespace + "loki_tenant_ingest_bytes_total",
				Help: "Raw log bytes accepted, by tenant.", Type: "counter"}
			tenantLimited := promtext.Family{Name: obs.Namespace + "loki_tenant_rate_limited_bytes_total",
				Help: "Log bytes rejected by the tenant ingest rate limiter, by tenant.", Type: "counter"}
			for _, t := range s.TenantStats() {
				tenantStreams = obs.Sample(tenantStreams, float64(t.Streams), "tenant", t.Tenant)
				tenantEntries = obs.Sample(tenantEntries, float64(t.Entries), "tenant", t.Tenant)
				tenantBytes = obs.Sample(tenantBytes, float64(t.RawBytes), "tenant", t.Tenant)
				tenantLimited = obs.Sample(tenantLimited, float64(t.RateLimitedBytes), "tenant", t.Tenant)
			}
			return []promtext.Family{
				obs.Fam("gauge", obs.Namespace+"loki_streams",
					"Live log streams (distinct label sets).", float64(st.Streams)),
				obs.Fam("gauge", obs.Namespace+"loki_chunks",
					"Chunks held across all streams, including open heads.", float64(st.Chunks)),
				obs.Fam("counter", obs.Namespace+"loki_entries_total",
					"Log entries accepted for ingestion.", float64(st.Entries)),
				obs.Fam("counter", obs.Namespace+"loki_ingest_bytes_total",
					"Raw log bytes accepted for ingestion.", float64(st.RawBytes)),
				obs.Fam("counter", obs.Namespace+"loki_compressed_bytes_total",
					"Bytes held after chunk compression.", float64(st.CompressedBytes)),
				obs.Sample(obs.Fam("counter", obs.Namespace+"loki_discarded_total",
					"Entries rejected by ingest limits, by reason.",
					float64(st.DiscardedOOO), "reason", "out_of_order"),
					float64(st.DiscardedTooLong), "reason", "too_long"),
				shardPushes,
				obs.Sample(obs.Fam("counter", obs.Namespace+"loki_chunk_cache_requests_total",
					"Sealed-block decompression cache lookups, by result.",
					float64(cs.Hits), "result", "hit"),
					float64(cs.Misses), "result", "miss"),
				obs.Fam("counter", obs.Namespace+"loki_chunk_cache_evictions_total",
					"Cached decoded blocks evicted by the byte budget.", float64(cs.Evictions)),
				obs.Fam("gauge", obs.Namespace+"loki_chunk_cache_bytes",
					"Raw bytes of decoded blocks currently cached.", float64(cs.Bytes)),
				obs.Fam("gauge", obs.Namespace+"loki_query_parallelism",
					"In-flight parallel stream-query workers.", float64(s.QueryParallelism())),
				tenantStreams,
				tenantEntries,
				tenantBytes,
				tenantLimited,
			}
		})
		s.obsReg = reg
	})
	return s.obsReg
}
