// Package experiments regenerates every figure and quantitative claim of
// the paper's evaluation (Figs. 2-9, plus the OMNI throughput, data
// volume, label-cardinality and compression claims). Each experiment
// drives the full pipeline with a simulated clock so the artifacts are
// deterministic; cmd/experiments prints them and EXPERIMENTS.md records
// paper-vs-measured.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"shastamon/internal/chunkenc"
	"shastamon/internal/core"
	"shastamon/internal/grafana"
	"shastamon/internal/hms"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/omni"
	"shastamon/internal/redfish"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
	"shastamon/internal/syslogd"
)

// LeakTime is the timestamp of the paper's leak event
// (2022-03-03T01:47:57Z, Fig. 2).
var LeakTime = time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)

// LeakRule is case study A's alerting rule ("if the return value is
// greater than zero and it lasts more than one minute, an alert will be
// generated").
var LeakRule = ruler.Rule{
	Name:   "PerlmutterCabinetLeak",
	Expr:   `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id, message) > 0`,
	For:    time.Minute,
	Labels: map[string]string{"severity": "critical"},
	Annotations: map[string]string{
		"summary": "Liquid leak detected at {{ $labels.Context }}",
	},
}

// SwitchRule is case study B's alerting rule (Fig. 8).
var SwitchRule = ruler.Rule{
	Name:   "SwitchOffline",
	Expr:   `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<sev>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (sev, problem, xname, state) > 0`,
	For:    0,
	Labels: map[string]string{"severity": "critical"},
	Annotations: map[string]string{
		"summary": "switch {{ $labels.xname }} changed state to {{ $labels.state }}",
	},
}

func clusterConfig() shasta.Config {
	return shasta.Config{
		Name: "perlmutter", Cabinets: []int{1002, 1102, 1203},
		ChassisPerCabinet: 8, BladesPerChassis: 2, NodesPerBMC: 2, SwitchesPerChassis: 8, Seed: 1,
	}
}

// Fig2 reproduces the raw Redfish leak payload as pulled from the
// Telemetry API.
func Fig2(w io.Writer) error {
	p, err := core.New(core.Options{Cluster: clusterConfig()})
	if err != nil {
		return err
	}
	defer p.Close()
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", LeakTime); err != nil {
		return err
	}
	if _, _, err := p.Collector.CollectOnce(LeakTime); err != nil {
		return err
	}
	// Read the raw record from Kafka, as the paper's Python client did.
	parts, err := p.Broker.Partitions(hms.TopicEvents)
	if err != nil {
		return err
	}
	for pi := 0; pi < parts; pi++ {
		msgs, err := p.Broker.Fetch(hms.TopicEvents, pi, 0, 10)
		if err != nil {
			return err
		}
		for _, m := range msgs {
			var pretty map[string]interface{}
			if err := json.Unmarshal(m.Value, &pretty); err != nil {
				return err
			}
			out, err := json.MarshalIndent(pretty, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Fig. 2 — raw Redfish event from the Telemetry API:\n%s\n", out)
		}
	}
	return nil
}

// lokiPush is the Loki push-API JSON of Fig. 3.
type lokiPush struct {
	Streams []lokiPushStream `json:"streams"`
}

type lokiPushStream struct {
	Stream map[string]string `json:"stream"`
	Values [][2]string       `json:"values"`
}

// Fig3 reproduces the transformed Loki push payload.
func Fig3(w io.Writer) error {
	payload := redfish.NewPayload(redfish.Record{
		Context: "x1102c4s0b0",
		Events:  []redfish.Event{redfish.LeakEvent(LeakTime, "A", "Front")},
	})
	streams, err := core.RedfishToLoki(payload, "perlmutter")
	if err != nil {
		return err
	}
	push := lokiPush{}
	for _, s := range streams {
		ps := lokiPushStream{Stream: s.Labels.Map()}
		for _, e := range s.Entries {
			ps.Values = append(ps.Values, [2]string{strconv.FormatInt(e.Timestamp, 10), e.Line})
		}
		push.Streams = append(push.Streams, ps)
	}
	out, err := json.MarshalIndent(push, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 3 — log data input to Loki:\n%s\n", out)
	return nil
}

// caseStudyA drives the leak scenario through the full pipeline and
// returns it for inspection.
func caseStudyA() (*core.Pipeline, error) {
	p, err := core.New(core.Options{Cluster: clusterConfig(), LogRules: []ruler.Rule{LeakRule}})
	if err != nil {
		return nil, err
	}
	steps := []time.Time{
		LeakTime.Add(-time.Minute),
		LeakTime,
		LeakTime.Add(61 * time.Second),
		LeakTime.Add(62 * time.Second),
	}
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", LeakTime); err != nil {
		p.Close()
		return nil, err
	}
	for _, ts := range steps {
		if err := p.Tick(ts); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// Fig4 renders the Redfish event in a Grafana log panel.
func Fig4(w io.Writer) error {
	p, err := caseStudyA()
	if err != nil {
		return err
	}
	defer p.Close()
	r := grafana.NewRenderer(p.Warehouse.LogQL, p.Warehouse.PromQL)
	panel := grafana.Panel{
		Title:  "Redfish events (Loki datasource)",
		Query:  `{data_type="redfish_event"}`,
		Source: grafana.SourceLokiLogs,
	}
	out, err := r.RenderPanel(panel, LeakTime.Add(-time.Hour), LeakTime.Add(time.Hour), time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 4 — Redfish event visualization:\n%s", out)
	return nil
}

// Fig5 renders the paper's LogQL metric query; the series must step from
// 0 to 1 at the event time and drop after the 60-minute window.
func Fig5(w io.Writer) error {
	p, err := caseStudyA()
	if err != nil {
		return err
	}
	defer p.Close()
	r := grafana.NewRenderer(p.Warehouse.LogQL, p.Warehouse.PromQL)
	panel := grafana.Panel{
		Title:  "sum(count_over_time(... CabinetLeakDetected ... [60m])) by (...)",
		Query:  `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id)`,
		Source: grafana.SourceLokiMetric,
	}
	chart, err := r.RenderPanel(panel, LeakTime.Add(-30*time.Minute), LeakTime.Add(90*time.Minute), 5*time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 5 — LeakDetected event as a metric:\n%s", chart)
	csv, err := r.CSV(panel, LeakTime.Add(-10*time.Minute), LeakTime.Add(70*time.Minute), 10*time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "series values:\n%s", csv)
	return nil
}

// Fig6 prints the Slack alert of case study A.
func Fig6(w io.Writer) error {
	p, err := caseStudyA()
	if err != nil {
		return err
	}
	defer p.Close()
	msgs := p.Slack.Messages()
	if len(msgs) == 0 {
		return fmt.Errorf("fig6: no slack message produced")
	}
	out, err := json.MarshalIndent(msgs[0], "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 6 — Slack alert from the Redfish leak event:\n%s\n", out)
	return nil
}

// caseStudyB drives the switch-offline scenario.
func caseStudyB() (*core.Pipeline, time.Time, error) {
	p, err := core.New(core.Options{Cluster: clusterConfig(), LogRules: []ruler.Rule{SwitchRule}})
	if err != nil {
		return nil, time.Time{}, err
	}
	t0 := time.Date(2022, 3, 3, 2, 0, 0, 0, time.UTC)
	if err := p.Tick(t0); err != nil {
		p.Close()
		return nil, t0, err
	}
	if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
		p.Close()
		return nil, t0, err
	}
	for _, ts := range []time.Time{t0.Add(time.Minute), t0.Add(time.Minute + time.Second)} {
		if err := p.Tick(ts); err != nil {
			p.Close()
			return nil, t0, err
		}
	}
	return p, t0, nil
}

// Fig7 renders the switch event in a Grafana log panel.
func Fig7(w io.Writer) error {
	p, t0, err := caseStudyB()
	if err != nil {
		return err
	}
	defer p.Close()
	r := grafana.NewRenderer(p.Warehouse.LogQL, p.Warehouse.PromQL)
	panel := grafana.Panel{
		Title:  "fabric manager monitor events",
		Query:  `{app="fabric_manager_monitor"} |= "fm_switch_offline"`,
		Source: grafana.SourceLokiLogs,
	}
	out, err := r.RenderPanel(panel, t0, t0.Add(10*time.Minute), time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 7 — switch event in Grafana:\n%s", out)
	return nil
}

// Fig8 prints the alerting rule and its evaluation at the event time.
func Fig8(w io.Writer) error {
	p, t0, err := caseStudyB()
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Fprintf(w, "Fig. 8 — alerting rule:\n")
	fmt.Fprintf(w, "  alert: %s\n  expr: %s\n  for: %s\n  labels: %v\n", SwitchRule.Name, SwitchRule.Expr, SwitchRule.For, SwitchRule.Labels)
	vec, err := p.Warehouse.LogQL.QueryInstant(SwitchRule.Expr, t0.Add(2*time.Minute).UnixNano())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "evaluation at %s:\n", t0.Add(2*time.Minute).Format(time.RFC3339))
	for _, s := range vec {
		fmt.Fprintf(w, "  %s => %g\n", s.Labels, s.V)
	}
	return nil
}

// Fig9 prints the offline-switch Slack notification.
func Fig9(w io.Writer) error {
	p, _, err := caseStudyB()
	if err != nil {
		return err
	}
	defer p.Close()
	msgs := p.Slack.Messages()
	if len(msgs) == 0 {
		return fmt.Errorf("fig9: no slack message produced")
	}
	out, err := json.MarshalIndent(msgs[0], "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 9 — offline switch Slack notification:\n%s\n", out)
	return nil
}

// C1 measures OMNI ingest throughput against the paper's 400,000
// messages/second claim (mixed log/metric load, single process).
func C1(w io.Writer, seconds float64) error {
	wh := omni.New(omni.Config{})
	gen := syslogd.NewGenerator(7, hostnames(64)...)
	start := time.Now()
	deadline := start.Add(time.Duration(seconds * float64(time.Second)))
	wh.RateWindowReset(start)
	var n int64
	batch := make([]loki.PushStream, 0, 128)
	ts := int64(0)
	for time.Now().Before(deadline) {
		batch = batch[:0]
		for i := 0; i < 128; i++ {
			ts += 1e6
			m := gen.Next(time.Unix(0, ts))
			batch = append(batch, core.SyslogToLoki(m, "perlmutter"))
		}
		if err := wh.IngestLogs(batch); err != nil {
			return err
		}
		n += 128
		// one metric sample per 4 logs, roughly the paper's mix
		for i := 0; i < 32; i++ {
			if err := wh.IngestMetric("cray_telemetry_temperature", labels.FromStrings("xname", "x1000c0s0b0n0"), ts/1e6, 45); err != nil {
				return err
			}
			n += 1
		}
	}
	rate := wh.RateWindow(time.Now())
	fmt.Fprintf(w, "C1 — OMNI ingest rate: %.0f messages/second over %.1fs (%d messages)\n", rate, seconds, n)
	fmt.Fprintf(w, "     paper claim: up to 400,000 messages/second (production OMNI cluster)\n")
	return nil
}

// C2 measures sustained log volume against Perlmutter's ">400 GB/day".
func C2(w io.Writer, seconds float64) error {
	wh := omni.New(omni.Config{})
	gen := syslogd.NewGenerator(9, hostnames(256)...)
	start := time.Now()
	deadline := start.Add(time.Duration(seconds * float64(time.Second)))
	ts := int64(0)
	for time.Now().Before(deadline) {
		batch := make([]loki.PushStream, 0, 256)
		for i := 0; i < 256; i++ {
			ts += 1e6
			batch = append(batch, core.SyslogToLoki(gen.Next(time.Unix(0, ts)), "perlmutter"))
		}
		if err := wh.IngestLogs(batch); err != nil {
			return err
		}
	}
	elapsed := time.Since(start).Seconds()
	if err := wh.Logs.Flush(); err != nil {
		return err
	}
	st := wh.Stats()
	bytesPerSec := float64(st.LogBytes) / elapsed
	gbPerDay := bytesPerSec * 86400 / 1e9
	fmt.Fprintf(w, "C2 — sustained log ingest: %.1f MB/s = %.0f GB/day raw line bytes\n", bytesPerSec/1e6, gbPerDay)
	fmt.Fprintf(w, "     paper claim: Perlmutter Phase 1 produces >400 GB/day (~4.6 MB/s sustained)\n")
	fmt.Fprintf(w, "     stored compressed: %d bytes for %d raw (ratio %.2fx)\n",
		st.LogStore.CompressedBytes, st.LogStore.RawBytes,
		float64(st.LogStore.RawBytes)/float64(maxI64(st.LogStore.CompressedBytes, 1)))
	return nil
}

// C3 reproduces the label-cardinality guidance: the same entries ingested
// under increasingly aggressive label schemes produce more streams and
// chunks ("the overuse of labels will create a huge amount of small
// chunks").
func C3(w io.Writer) error {
	type scheme struct {
		name   string
		labels func(m syslogd.Message, i int) labels.Labels
	}
	schemes := []scheme{
		{"paper (cluster+data_type+context)", func(m syslogd.Message, i int) labels.Labels {
			return labels.FromStrings("cluster", "perlmutter", "data_type", "syslog", "hostname", m.Hostname)
		}},
		{"plus app+severity", func(m syslogd.Message, i int) labels.Labels {
			return labels.FromStrings("cluster", "perlmutter", "data_type", "syslog", "hostname", m.Hostname, "app", m.App, "severity", m.SeverityName())
		}},
		{"plus unique request id (anti-pattern)", func(m syslogd.Message, i int) labels.Labels {
			return labels.FromStrings("cluster", "perlmutter", "data_type", "syslog", "hostname", m.Hostname, "app", m.App, "req", strconv.Itoa(i))
		}},
	}
	const entries = 20000
	fmt.Fprintf(w, "C3 — label cardinality ablation (%d identical syslog entries):\n", entries)
	fmt.Fprintf(w, "%-42s %10s %10s %14s %12s\n", "label scheme", "streams", "chunks", "compressed(B)", "ingest")
	for _, sc := range schemes {
		store := loki.NewStore(loki.Limits{
			MaxLabelNamesPerStream: 20, MaxLineSize: 1 << 20,
			ChunkOptions: chunkenc.Options{TargetSize: 256 * 1024},
		})
		gen := syslogd.NewGenerator(11, hostnames(32)...)
		start := time.Now()
		for i := 0; i < entries; i++ {
			m := gen.Next(time.Unix(0, int64(i)*1e6))
			if err := store.Push([]loki.PushStream{{
				Labels:  sc.labels(m, i),
				Entries: []loki.Entry{{Timestamp: m.Timestamp.UnixNano(), Line: m.Text}},
			}}); err != nil {
				return err
			}
		}
		el := time.Since(start)
		st := store.Stats()
		fmt.Fprintf(w, "%-42s %10d %10d %14d %12s\n", sc.name, st.Streams, st.Chunks, st.CompressedBytes, el.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "paper guidance: limit labels to low-variation keys; Loki prefers bigger but fewer chunks\n")
	return nil
}

// C4 measures chunk compression on the two corpora of the case studies.
func C4(w io.Writer) error {
	fmt.Fprintf(w, "C4 — chunk compression (flate, per-corpus):\n")
	corpora := map[string]func(i int) string{
		"redfish leak events": func(i int) string {
			body, _ := json.Marshal(map[string]string{
				"Severity":  "Warning",
				"MessageId": "CrayAlerts.1.0.CabinetLeakDetected",
				"Message":   "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.",
			})
			return string(body)
		},
		"syslog mixed": func(i int) string {
			gen := syslogd.NewGenerator(int64(i), "nid000001")
			return gen.Next(time.Unix(int64(i), 0)).Text
		},
	}
	names := make([]string, 0, len(corpora))
	for name := range corpora {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		line := corpora[name]
		c := chunkenc.New(chunkenc.Options{TargetSize: 1 << 30, MaxEntries: 1 << 30})
		for i := 0; i < 10000; i++ {
			if err := c.Append(chunkenc.Entry{Timestamp: int64(i) * 1e9, Line: line(i)}); err != nil {
				return err
			}
		}
		if err := c.Close(); err != nil {
			return err
		}
		ratio := float64(c.RawBytes()) / float64(c.CompressedBytes())
		fmt.Fprintf(w, "  %-22s raw=%8d compressed=%8d ratio=%.1fx\n", name, c.RawBytes(), c.CompressedBytes(), ratio)
	}
	fmt.Fprintf(w, "paper claim: \"a small index and compressed chunks significantly reduce the costs for storage\"\n")
	return nil
}

// C7 measures the end-to-end alert latency of case study A in pipeline
// ticks and wall time, the paper's MTTR-reduction motivation.
func C7(w io.Writer) error {
	p, err := core.New(core.Options{Cluster: clusterConfig(), LogRules: []ruler.Rule{LeakRule}})
	if err != nil {
		return err
	}
	defer p.Close()
	start := time.Now()
	now := LeakTime.Add(-time.Minute)
	if err := p.Tick(now); err != nil {
		return err
	}
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", LeakTime); err != nil {
		return err
	}
	ticks := 0
	now = LeakTime
	for len(p.Slack.Messages()) == 0 && ticks < 600 {
		if err := p.Tick(now); err != nil {
			return err
		}
		ticks++
		now = now.Add(time.Second)
	}
	wall := time.Since(start)
	if len(p.Slack.Messages()) == 0 {
		return fmt.Errorf("c7: alert never reached slack")
	}
	simLatency := now.Sub(LeakTime)
	fmt.Fprintf(w, "C7 — end-to-end alert latency (leak sensor -> Slack):\n")
	fmt.Fprintf(w, "  simulated time: %s with 1s evaluation cadence (floor: rule for: %s)\n", simLatency, LeakRule.For)
	fmt.Fprintf(w, "  pipeline work:  %d ticks in %s wall time (%.1f ms/tick)\n", ticks, wall.Round(time.Millisecond), float64(wall.Milliseconds())/float64(maxI(ticks, 1)))
	fmt.Fprintf(w, "  paper: manual HPE-tool review took 'a person ... their job for the whole day'; automation reduces MTTR to the rule's hold time\n")
	return nil
}

// hostnames produces nid-style hostnames.
func hostnames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("nid%06d", i+1)
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Runner maps experiment names to functions for the CLI.
type Runner struct {
	// QuickSeconds bounds the timed experiments (C1, C2).
	QuickSeconds float64
}

// Run executes the named experiment ("fig2".."fig9", "c1".."c4", "c7",
// "latency", "latency_json", "earlywarn", "earlywarn_json", or "all")
// writing artifacts to w.
func (r Runner) Run(name string, w io.Writer) error {
	secs := r.QuickSeconds
	if secs <= 0 {
		secs = 1.0
	}
	exps := map[string]func(io.Writer) error{
		"fig2": Fig2, "fig3": Fig3, "fig4": Fig4, "fig5": Fig5,
		"fig6": Fig6, "fig7": Fig7, "fig8": Fig8, "fig9": Fig9,
		"c1": func(w io.Writer) error { return C1(w, secs) },
		"c2": func(w io.Writer) error { return C2(w, secs) },
		"c3": C3, "c4": C4, "c7": C7,
		"latency": Latency, "latency_json": LatencyJSON,
		"earlywarn": EarlyWarn, "earlywarn_json": EarlyWarnJSON,
	}
	if name == "all" {
		order := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "c1", "c2", "c3", "c4", "c7", "latency", "earlywarn"}
		for _, n := range order {
			fmt.Fprintf(w, "\n===== %s =====\n", strings.ToUpper(n))
			if err := exps[n](w); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	fn, ok := exps[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return fn(w)
}
