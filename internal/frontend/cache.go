package frontend

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// resultCache is the step-aligned results cache: a byte-budgeted LRU in
// the mould of chunkenc.BlockCache, keyed by (engine, query, step, split
// window) and holding merged split matrices. Cached matrices are shared
// between readers and must be treated as immutable.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	ll       *list.List // front = most recently used
	items    map[resultKey]*list.Element
	// invalidatedNS is the retention high-water mark in wall-clock
	// nanoseconds: entries whose data window begins before it are
	// refused at put time, so a split evaluated before a concurrent
	// retention pass cannot cache data the store just deleted.
	invalidatedNS int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type resultKey struct {
	tenant     string
	engine     string
	query      string
	step       int64
	start, end int64 // split window, engine units
}

type resultItem struct {
	key resultKey
	m   Matrix
	// minDataNS is the wall-clock nanosecond the split's data window
	// begins at (split start minus lookback): the retention comparison
	// point.
	minDataNS int64
	bytes     int
}

func newResultCache(maxBytes int) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[resultKey]*list.Element{},
		// No retention has run yet: admit any data window, including ones
		// beginning before the Unix epoch (pinned-clock tests).
		invalidatedNS: math.MinInt64,
	}
}

// matrixBytes approximates the retained size of a result matrix: label
// pairs plus 16 bytes per point plus slice headers, over a fixed
// per-entry charge (key strings, map bucket, list element) so even
// empty results — common when dashboards scan quiet windows — count
// against the byte budget instead of accumulating unbounded.
func matrixBytes(m Matrix) int {
	n := 96
	for _, s := range m {
		n += 48
		for _, l := range s.Labels {
			n += len(l.Name) + len(l.Value) + 32
		}
		n += 16 * len(s.Points)
	}
	return n
}

func (rc *resultCache) get(tid, engine, query string, step int64, sp span) (Matrix, int, bool) {
	if rc == nil {
		return nil, 0, false
	}
	key := resultKey{tenant: tid, engine: engine, query: query, step: step, start: sp.start, end: sp.end}
	rc.mu.Lock()
	el, ok := rc.items[key]
	if ok {
		rc.ll.MoveToFront(el)
	}
	rc.mu.Unlock()
	if !ok {
		rc.misses.Add(1)
		return nil, 0, false
	}
	rc.hits.Add(1)
	it := el.Value.(*resultItem)
	return it.m, it.bytes, true
}

func (rc *resultCache) put(tid, engine, query string, step int64, sp span, unit time.Duration, lookback int64, m Matrix) {
	if rc == nil {
		return
	}
	bytes := matrixBytes(m)
	if bytes > rc.maxBytes {
		return
	}
	minDataNS := (sp.start - lookback) * int64(unit)
	key := resultKey{tenant: tid, engine: engine, query: query, step: step, start: sp.start, end: sp.end}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if minDataNS < rc.invalidatedNS {
		return // retention already deleted under this window
	}
	if _, ok := rc.items[key]; ok {
		return // raced with another evaluation of the same split
	}
	rc.items[key] = rc.ll.PushFront(&resultItem{key: key, m: m, minDataNS: minDataNS, bytes: bytes})
	rc.curBytes += bytes
	for rc.curBytes > rc.maxBytes {
		back := rc.ll.Back()
		if back == nil {
			break
		}
		rc.evict(back)
	}
}

// evict removes one element; callers hold rc.mu.
func (rc *resultCache) evict(el *list.Element) {
	it := el.Value.(*resultItem)
	rc.ll.Remove(el)
	delete(rc.items, it.key)
	rc.curBytes -= it.bytes
	rc.evictions.Add(1)
}

// invalidateBefore drops entries whose data window begins before tsNS
// and raises the admission high-water mark. Returns entries dropped.
func (rc *resultCache) invalidateBefore(tsNS int64) int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if tsNS > rc.invalidatedNS {
		rc.invalidatedNS = tsNS
	}
	dropped := 0
	var next *list.Element
	for el := rc.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*resultItem).minDataNS < tsNS {
			rc.evict(el)
			dropped++
		}
	}
	return dropped
}

// CacheStats is a point-in-time snapshot of results-cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int
}

// Stats snapshots the counters. A nil cache reports zeros.
func (rc *resultCache) Stats() CacheStats {
	if rc == nil {
		return CacheStats{}
	}
	rc.mu.Lock()
	entries, bytes := len(rc.items), rc.curBytes
	rc.mu.Unlock()
	return CacheStats{
		Hits:      rc.hits.Load(),
		Misses:    rc.misses.Load(),
		Evictions: rc.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
