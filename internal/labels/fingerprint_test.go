package labels

import (
	"hash/fnv"
	"testing"
)

// referenceFingerprint is the pre-inline implementation: hash/fnv over
// name, 0xff, value, 0xff per label. The inlined version must stay
// byte-compatible so persisted/shard assignments do not move.
func referenceFingerprint(ls Labels) Fingerprint {
	h := fnv.New64a()
	for _, l := range ls {
		h.Write([]byte(l.Name))
		h.Write([]byte{0xff})
		h.Write([]byte(l.Value))
		h.Write([]byte{0xff})
	}
	return Fingerprint(h.Sum64())
}

func TestFingerprintMatchesHashFNV(t *testing.T) {
	cases := []Labels{
		nil,
		FromStrings("hostname", "nid000001"),
		FromStrings("hostname", "nid000001", "data_type", "syslog"),
		FromStrings("a", "", "", "b"),
		FromStrings("app", "x", "severity", "err", "zone", "cab3"),
		FromStrings("unicode", "héllo wörld ✓"),
	}
	for _, ls := range cases {
		if got, want := ls.Fingerprint(), referenceFingerprint(ls); got != want {
			t.Errorf("Fingerprint(%s) = %x, want %x", ls, got, want)
		}
	}
}

func TestFingerprintZeroAlloc(t *testing.T) {
	ls := FromStrings("hostname", "nid000001", "data_type", "syslog", "severity", "err")
	var sink Fingerprint
	allocs := testing.AllocsPerRun(100, func() { sink = ls.Fingerprint() })
	_ = sink
	if allocs != 0 {
		t.Fatalf("Fingerprint allocates %.1f per call, want 0", allocs)
	}
}
