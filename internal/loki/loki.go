// Package loki implements a Grafana-Loki-style log aggregation store: the
// primary substrate of the paper. Logs are (timestamp, labels, line)
// triples. Only the timestamp and the labels are indexed; line content is
// compressed into chunks (see chunkenc). Logs sharing one unique label
// combination form a stream, and each stream fills chunks of its own — the
// exact storage model §IV.A of the paper walks through.
package loki

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
	"shastamon/internal/obs"
)

// Entry is a single log line.
type Entry struct {
	Timestamp int64 // Unix nanoseconds, as in Loki's push API
	Line      string
}

// PushStream is one stream in a push request: a label set plus entries, the
// shape of the JSON payload shown in Fig. 3 of the paper.
type PushStream struct {
	Labels  labels.Labels
	Entries []Entry
}

// Limits bound ingestion, mirroring Loki's per-tenant limits.
type Limits struct {
	MaxLabelNamesPerStream int // 0 = default 15
	MaxLineSize            int // bytes, 0 = default 256 KiB
	MaxStreams             int // 0 = unlimited
	RejectOldSamples       bool
	ChunkOptions           chunkenc.Options
}

// DefaultLimits mirror Loki 2.4 defaults at simulator scale.
func DefaultLimits() Limits {
	return Limits{MaxLabelNamesPerStream: 15, MaxLineSize: 256 * 1024}
}

// Validation errors returned by Push.
var (
	ErrTooManyLabels = errors.New("loki: stream exceeds max label names")
	ErrLineTooLong   = errors.New("loki: line exceeds max size")
	ErrMaxStreams    = errors.New("loki: per-store stream limit exceeded")
	ErrEmptyLabels   = errors.New("loki: stream must carry at least one label")
)

// stream is the per-label-set state: an ordered list of filled chunks plus
// the currently open head chunk.
type stream struct {
	labels labels.Labels
	fp     labels.Fingerprint

	mu     sync.Mutex
	chunks []*chunkenc.Chunk // sealed (full) chunks, oldest first
	head   *chunkenc.Chunk
	// lastTS tracks the newest accepted timestamp so out-of-order entries
	// are rejected across chunk cuts as well.
	lastTS int64
}

// Store is an in-process Loki: ingester plus index plus chunk store.
// It is safe for concurrent use.
type Store struct {
	limits Limits

	obsOnce sync.Once
	obsReg  *obs.Registry

	mu      sync.RWMutex
	streams map[labels.Fingerprint][]*stream // collision list per fingerprint
	ordered []*stream                        // insertion order, for queries

	// ingest statistics, exposed for experiments and dashboards
	statsMu       sync.Mutex
	totalEntries  int64
	totalBytes    int64
	discardedOOO  int64
	discardedSize int64
}

// NewStore returns an empty store with the given limits.
func NewStore(limits Limits) *Store {
	if limits.MaxLabelNamesPerStream == 0 {
		limits.MaxLabelNamesPerStream = 15
	}
	if limits.MaxLineSize == 0 {
		limits.MaxLineSize = 256 * 1024
	}
	return &Store{limits: limits, streams: map[labels.Fingerprint][]*stream{}}
}

// Push ingests a batch of streams. Entries within each stream must be in
// non-decreasing timestamp order; out-of-order entries are dropped and
// counted, mirroring Loki's reject-and-continue behaviour. The first
// validation error is returned after the whole batch is processed.
func (s *Store) Push(batch []PushStream) error {
	var firstErr error
	for _, ps := range batch {
		if err := s.pushStream(ps); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Store) pushStream(ps PushStream) error {
	if len(ps.Labels) == 0 {
		return ErrEmptyLabels
	}
	if len(ps.Labels) > s.limits.MaxLabelNamesPerStream {
		return fmt.Errorf("%w: %d > %d (%s)", ErrTooManyLabels, len(ps.Labels), s.limits.MaxLabelNamesPerStream, ps.Labels)
	}
	if err := ps.Labels.Validate(); err != nil {
		return err
	}
	st, err := s.getOrCreateStream(ps.Labels)
	if err != nil {
		return err
	}
	var firstErr error
	var accepted, bytes int64
	st.mu.Lock()
	for _, e := range ps.Entries {
		if len(e.Line) > s.limits.MaxLineSize {
			s.statsMu.Lock()
			s.discardedSize++
			s.statsMu.Unlock()
			if firstErr == nil {
				firstErr = ErrLineTooLong
			}
			continue
		}
		if e.Timestamp < st.lastTS {
			s.statsMu.Lock()
			s.discardedOOO++
			s.statsMu.Unlock()
			if firstErr == nil {
				firstErr = chunkenc.ErrOutOfOrder
			}
			continue
		}
		if err := st.append(e, s.limits.ChunkOptions); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		st.lastTS = e.Timestamp
		accepted++
		bytes += int64(len(e.Line))
	}
	st.mu.Unlock()
	s.statsMu.Lock()
	s.totalEntries += accepted
	s.totalBytes += bytes
	s.statsMu.Unlock()
	return firstErr
}

func (st *stream) append(e Entry, opt chunkenc.Options) error {
	if st.head == nil {
		st.head = chunkenc.New(opt)
	}
	err := st.head.Append(chunkenc.Entry{Timestamp: e.Timestamp, Line: e.Line})
	if err == chunkenc.ErrChunkFull {
		_ = st.head.Close()
		st.chunks = append(st.chunks, st.head)
		st.head = chunkenc.New(opt)
		err = st.head.Append(chunkenc.Entry{Timestamp: e.Timestamp, Line: e.Line})
	}
	return err
}

func (s *Store) getOrCreateStream(ls labels.Labels) (*stream, error) {
	fp := ls.Fingerprint()
	s.mu.RLock()
	for _, st := range s.streams[fp] {
		if st.labels.Equal(ls) {
			s.mu.RUnlock()
			return st, nil
		}
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.streams[fp] {
		if st.labels.Equal(ls) {
			return st, nil
		}
	}
	if s.limits.MaxStreams > 0 && len(s.ordered) >= s.limits.MaxStreams {
		return nil, ErrMaxStreams
	}
	st := &stream{labels: ls.Copy(), fp: fp, lastTS: -1 << 62}
	s.streams[fp] = append(s.streams[fp], st)
	s.ordered = append(s.ordered, st)
	return st, nil
}

// SelectedStream is a query result stream: labels plus matching entries in
// timestamp order.
type SelectedStream struct {
	Labels  labels.Labels
	Entries []Entry
}

// Select returns, for every stream matching the selector, its entries in
// [mint, maxt] (inclusive). Streams with no matching entries are omitted.
// Results are ordered by stream label string for determinism.
func (s *Store) Select(sel []*labels.Matcher, mint, maxt int64) ([]SelectedStream, error) {
	s.mu.RLock()
	cand := make([]*stream, 0)
	for _, st := range s.ordered {
		if labels.MatchLabels(st.labels, sel) {
			cand = append(cand, st)
		}
	}
	s.mu.RUnlock()

	out := make([]SelectedStream, 0, len(cand))
	for _, st := range cand {
		entries, err := st.query(mint, maxt)
		if err != nil {
			return nil, err
		}
		if len(entries) > 0 {
			out = append(out, SelectedStream{Labels: st.labels, Entries: entries})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out, nil
}

func (st *stream) query(mint, maxt int64) ([]Entry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Entry
	collect := func(c *chunkenc.Chunk) error {
		cmin, cmax, ok := c.Bounds()
		if !ok || cmax < mint || cmin > maxt {
			return nil
		}
		it := c.Iterator(mint, maxt)
		for it.Next() {
			e := it.At()
			out = append(out, Entry{Timestamp: e.Timestamp, Line: e.Line})
		}
		return it.Err()
	}
	for _, c := range st.chunks {
		if err := collect(c); err != nil {
			return nil, err
		}
	}
	if st.head != nil {
		if err := collect(st.head); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Series returns the label sets of all streams matching the selector.
func (s *Store) Series(sel []*labels.Matcher) []labels.Labels {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []labels.Labels
	for _, st := range s.ordered {
		if labels.MatchLabels(st.labels, sel) {
			out = append(out, st.labels)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// LabelValues returns the sorted distinct values of a label name across all
// streams; used by dashboards for variable dropdowns.
func (s *Store) LabelValues(name string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for _, st := range s.ordered {
		if v := st.labels.Get(name); v != "" {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Stats is a snapshot of store counters.
type Stats struct {
	Streams          int
	Chunks           int
	Entries          int64
	RawBytes         int64
	CompressedBytes  int64
	DiscardedOOO     int64
	DiscardedTooLong int64
}

// Stats returns current counters. CompressedBytes counts sealed blocks and
// raw head data, so the compression ratio converges as chunks fill.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{Streams: len(s.ordered)}
	for _, str := range s.ordered {
		str.mu.Lock()
		st.Chunks += len(str.chunks)
		if str.head != nil && str.head.Entries() > 0 {
			st.Chunks++
		}
		for _, c := range str.chunks {
			st.CompressedBytes += int64(c.CompressedBytes())
		}
		if str.head != nil {
			st.CompressedBytes += int64(str.head.CompressedBytes())
		}
		str.mu.Unlock()
	}
	s.mu.RUnlock()
	s.statsMu.Lock()
	st.Entries = s.totalEntries
	st.RawBytes = s.totalBytes
	st.DiscardedOOO = s.discardedOOO
	st.DiscardedTooLong = s.discardedSize
	s.statsMu.Unlock()
	return st
}

// Flush seals the open head block of every stream so that Stats reports
// fully-compressed sizes; ingestion may continue afterwards.
func (s *Store) Flush() error {
	s.mu.RLock()
	streams := append([]*stream(nil), s.ordered...)
	s.mu.RUnlock()
	for _, st := range streams {
		st.mu.Lock()
		var err error
		if st.head != nil {
			err = st.head.Close()
		}
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// DeleteBefore drops sealed chunks whose max timestamp is older than ts and
// removes streams that become empty. It implements retention: the paper's
// OMNI keeps "up to two years of operational data immediately available".
// It returns the number of chunks dropped.
func (s *Store) DeleteBefore(ts int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	keptStreams := s.ordered[:0]
	for _, st := range s.ordered {
		st.mu.Lock()
		kept := st.chunks[:0]
		for _, c := range st.chunks {
			if _, maxt, ok := c.Bounds(); ok && maxt < ts {
				dropped++
				continue
			}
			kept = append(kept, c)
		}
		st.chunks = kept
		if st.head != nil {
			if _, maxt, ok := st.head.Bounds(); ok && maxt < ts {
				dropped++
				st.head = nil
			}
		}
		empty := len(st.chunks) == 0 && (st.head == nil || st.head.Entries() == 0)
		st.mu.Unlock()
		if empty {
			// remove from fingerprint map
			list := s.streams[st.fp]
			for i, other := range list {
				if other == st {
					s.streams[st.fp] = append(list[:i], list[i+1:]...)
					break
				}
			}
			if len(s.streams[st.fp]) == 0 {
				delete(s.streams, st.fp)
			}
			continue
		}
		keptStreams = append(keptStreams, st)
	}
	s.ordered = keptStreams
	return dropped
}
