package core

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/stats"
)

func pushFatCorpus(t *testing.T, p *Pipeline, base time.Time) {
	t.Helper()
	line := strings.Repeat("x", 100)
	entries := make([]loki.Entry, 20000) // ~2 MB against a 32 KB budget
	for i := range entries {
		entries[i] = loki.Entry{Timestamp: base.UnixNano() + int64(i+1)*1e6, Line: line}
	}
	if err := p.Warehouse.IngestLogs([]loki.PushStream{{
		Labels: labels.FromStrings("app", "fat"), Entries: entries,
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestMetaAlertQueryLimitBreached is the issue's acceptance scenario: a
// query blowing through Limits.MaxBytesScanned is cancelled mid-scan,
// shows up on /debug/slowlog with reason "bytes", and the
// ShastamonQueryLimitBreached meta-rule carries the breach through the
// normal vmalert -> Alertmanager -> Slack path.
func TestMetaAlertQueryLimitBreached(t *testing.T) {
	p := newPipeline(t, Options{
		MetaAlerts: true,
		LokiLimits: loki.Limits{MaxBytesScanned: 32 << 10},
	})
	base := time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)
	mustTick(t, p, base)
	pushFatCorpus(t, p, base)

	runaway := func() {
		t.Helper()
		_, snap, err := p.Warehouse.QueryLogsContext(context.Background(), `{app="fat"}`, 0, 1<<62)
		if !errors.Is(err, stats.ErrMaxBytesScanned) {
			t.Fatalf("err = %v, want ErrMaxBytesScanned", err)
		}
		// Cancelled mid-scan: some bytes were read, far from the full 2 MB.
		if b := snap.Summary.TotalBytesProcessed; b <= 0 || b >= 1<<20 {
			t.Fatalf("scanned %d bytes — not a mid-scan cancel", b)
		}
	}
	// Two breaches across a scrape boundary so the counter visibly
	// increases inside the rule's 10m window.
	runaway()
	mustTick(t, p, base.Add(5*time.Second))
	runaway()

	found := false
	for ts, deadline := base.Add(10*time.Second), base.Add(3*time.Minute); ts.Before(deadline); ts = ts.Add(5 * time.Second) {
		mustTick(t, p, ts)
		if slackTitles(p)["ShastamonQueryLimitBreached"] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ShastamonQueryLimitBreached never reached Slack; titles = %v", slackTitles(p))
	}
	// The meta-alert names the reason label.
	named := false
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			if att.Title == "ShastamonQueryLimitBreached" && strings.Contains(att.Text, "bytes") {
				named = true
			}
		}
	}
	if !named {
		t.Fatal("meta-alert does not identify the breach reason")
	}

	// Both breaches are visible on the observability endpoint's slowlog.
	rec := httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if rec.Code != 200 {
		t.Fatalf("slowlog status %d", rec.Code)
	}
	var slow struct {
		Slowlog []stats.SlowEntry `json:"slowlog"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Slowlog) != 2 {
		t.Fatalf("slowlog has %d entries, want 2", len(slow.Slowlog))
	}
	for _, e := range slow.Slowlog {
		if e.Reason != "bytes" || e.Engine != "logql" {
			t.Fatalf("slowlog entry: %+v", e)
		}
	}
}

// The pipeline's tracker also feeds /debug/queries and the self-metric
// families the "Self: queries" dashboard panels read.
func TestQueryObservabilityWiring(t *testing.T) {
	p := newPipeline(t, Options{})
	base := time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)
	mustTick(t, p, base)

	if _, _, err := p.Warehouse.QueryLogsContext(context.Background(), `{data_type="syslog"}`, 0, 1<<62); err != nil {
		t.Fatal(err)
	}
	// /debug/queries answers (empty: the query already finished).
	rec := httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "queries") {
		t.Fatalf("/debug/queries: %d %s", rec.Code, rec.Body)
	}
	// The shastamon_query_* and Go runtime families are on /metrics.
	rec = httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, fam := range []string{
		"shastamon_query_duration_seconds",
		"shastamon_query_bytes_processed",
		"shastamon_queries_active",
		"shastamon_go_goroutines",
		"shastamon_go_heap_alloc_bytes",
		"shastamon_go_gc_pause_seconds",
	} {
		if !strings.Contains(body, fam) {
			t.Fatalf("/metrics missing %s", fam)
		}
	}
	// The self-stat panels render from the same state.
	out, err := p.SelfStat("query-duration-quantiles")
	if err != nil || !strings.Contains(out, "logql") {
		t.Fatalf("quantiles: %q %v", out, err)
	}
	if _, err := p.SelfStat("cache-hit-ratio"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SelfStat("slowlog-top"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SelfStat("nope"); err == nil {
		t.Fatal("unknown self-stat key accepted")
	}
}
