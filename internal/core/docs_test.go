package core

import (
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMetricsDocumented is the metrics-docs lint run by verify.sh: every
// shastamon_* family a live pipeline actually registers must appear in
// the README metric table, either by exact name or under one of the
// wildcard rows (`shastamon_loki_*` etc). A new metric without a doc row
// fails here, not in review.
func TestMetricsDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	// Backticked shastamon_* tokens; `shastamon_foo_*` rows are wildcards.
	tokenRe := regexp.MustCompile("`(shastamon_[a-z0-9_*]+)`")
	var exact, prefixes []string
	for _, m := range tokenRe.FindAllStringSubmatch(string(readme), -1) {
		if tok := m[1]; strings.HasSuffix(tok, "_*") {
			prefixes = append(prefixes, strings.TrimSuffix(tok, "*"))
		} else {
			exact = append(exact, tok)
		}
	}
	if len(exact) == 0 || len(prefixes) == 0 {
		t.Fatalf("README metric table not found (exact=%d wildcard=%d)", len(exact), len(prefixes))
	}

	documented := func(fam string) bool {
		// Histogram families render as base{_bucket,_sum,_count}: the
		// base row documents all three.
		base := fam
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		for _, tok := range exact {
			if tok == fam || tok == base {
				return true
			}
		}
		for _, pre := range prefixes {
			if strings.HasPrefix(fam, pre) {
				return true
			}
		}
		return false
	}

	p := newPipeline(t, Options{MetaAlerts: true})
	mustTick(t, p, time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC))
	fams := p.Gather()
	if len(fams) < 20 {
		t.Fatalf("only %d families gathered — registry wiring broken?", len(fams))
	}
	var missing []string
	for _, fam := range fams {
		if !strings.HasPrefix(fam.Name, "shastamon_") {
			t.Fatalf("family %q outside the shastamon_ namespace", fam.Name)
		}
		if !documented(fam.Name) {
			missing = append(missing, fam.Name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("metric families registered but missing from the README table:\n  %s",
			strings.Join(missing, "\n  "))
	}

	// The meta-rule table must list every built-in rule by name.
	for _, r := range MetaRules() {
		if !strings.Contains(string(readme), "`"+r.Name+"`") {
			t.Fatalf("meta-rule %s missing from the README rule table", r.Name)
		}
	}
}
