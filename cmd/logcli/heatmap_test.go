package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/anomaly"
)

func TestQueryHeatmapAgainstOmnidAPI(t *testing.T) {
	start := time.Date(2022, 3, 3, 1, 40, 0, 0, time.UTC)
	hm := anomaly.BuildHeatmap("test", start, start.Add(10*time.Minute), 2*time.Minute, []anomaly.Cell{
		{Node: "x1203c1s0b0n0", Time: start.Add(4 * time.Minute), Value: 7},
		{Node: "x1002c1s0b0n1", Time: start, Value: 2},
	})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/heatmap" {
			http.NotFound(w, r)
			return
		}
		if got := r.URL.Query().Get("since"); got != "30m0s" {
			t.Errorf("since = %q", got)
		}
		_ = json.NewEncoder(w).Encode(hm)
	}))
	defer srv.Close()

	if err := queryHeatmap(srv.URL, 30*time.Minute, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := queryHeatmap("http://127.0.0.1:0", time.Minute, time.Minute); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

// Invalid windows fail locally, before any request goes out — the same
// checks omnid's endpoint would answer with a 400.
func TestQueryHeatmapRejectsBadWindowsLocally(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("client sent a request for a window it should reject locally")
	}))
	defer srv.Close()

	err := queryHeatmap(srv.URL, 5*time.Minute, 10*time.Minute)
	if err == nil || !strings.Contains(err.Error(), "step") {
		t.Fatalf("step > since: %v, want step error", err)
	}
	err = queryHeatmap(srv.URL, 2000*time.Hour, time.Second)
	if err == nil || !strings.Contains(err.Error(), "buckets") {
		t.Fatalf("bucket cap: %v, want buckets error", err)
	}
	if err := queryHeatmap(srv.URL, -time.Minute, time.Second); err == nil {
		t.Fatal("negative window accepted")
	}
	if err := queryHeatmap(srv.URL, time.Minute, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}
