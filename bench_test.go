// Benchmarks regenerating the paper's quantitative claims and the design
// ablations DESIGN.md calls out. One benchmark (family) per claim:
//
//	C1  BenchmarkOMNIIngest*        "OMNI ingests up to 400,000 msgs/s"
//	C2  BenchmarkSustainedBytes     "Perlmutter: >400 GB/day"
//	C3  BenchmarkLabelCardinality   label overuse -> many small chunks
//	C4  BenchmarkChunkCompression   compressed chunks cut storage
//	C5  BenchmarkShardedIngest      the 8-worker Loki cluster layout
//	E4  BenchmarkFig5Query          the leak count_over_time query
//	E7  BenchmarkFig8Query          the switch pattern query
//	C7  BenchmarkPipelineTick       full-pipeline evaluation cadence
//	    BenchmarkAlertmanagerFanout grouping fan-in
//	    BenchmarkIndexedVsGrep      Loki's label-index design premise
package shastamon

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/chunkenc"
	"shastamon/internal/core"
	"shastamon/internal/eventsearch"
	"shastamon/internal/experiments"
	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/loki"
	"shastamon/internal/obs"
	"shastamon/internal/omni"
	"shastamon/internal/ruler"
	"shastamon/internal/stats"
	"shastamon/internal/syslogd"
	"shastamon/internal/tenant"
	"shastamon/internal/wal"
)

const leakLine = `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}`

func benchHosts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("nid%06d", i+1)
	}
	return out
}

// C1: warehouse ingest throughput, logs only. The b.N/elapsed rate is the
// number to compare against the paper's 400k msgs/s.
func BenchmarkOMNIIngestLogs(b *testing.B) {
	wh := omni.New(omni.Config{})
	gen := syslogd.NewGenerator(1, benchHosts(64)...)
	msgs := make([]loki.PushStream, 256)
	for i := range msgs {
		msgs[i] = core.SyslogToLoki(gen.Next(time.Unix(0, int64(i))), "perlmutter")
	}
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ps := msgs[i%len(msgs)]
		ts += 1e6
		ps.Entries = []loki.Entry{{Timestamp: ts, Line: ps.Entries[0].Line}}
		if err := wh.IngestLogs([]loki.PushStream{ps}); err != nil {
			b.Fatal(err)
		}
	}
}

// C1 with durability on: the same single-message ingest loop as
// BenchmarkOMNIIngestLogs, but through a warehouse opened with a data
// directory — every push is WAL-logged (lazy fsync) before acking. The
// delta against the WAL-off run above is the durability overhead
// BENCH_ingest.json tracks.
func BenchmarkOMNIIngestLogsWAL(b *testing.B) {
	wh, err := omni.Open(omni.Config{DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	gen := syslogd.NewGenerator(1, benchHosts(64)...)
	msgs := make([]loki.PushStream, 256)
	for i := range msgs {
		msgs[i] = core.SyslogToLoki(gen.Next(time.Unix(0, int64(i))), "perlmutter")
	}
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ps := msgs[i%len(msgs)]
		ts += 1e6
		ps.Entries = []loki.Entry{{Timestamp: ts, Line: ps.Entries[0].Line}}
		if err := wh.IngestLogs([]loki.PushStream{ps}); err != nil {
			b.Fatal(err)
		}
	}
}

// Crash-recovery speed: replay a 100k-entry WAL into a fresh store. Each
// iteration is one full cold start (checkpoint-free worst case); the
// entries/s metric is the replay rate, ns/op the recovery time.
func BenchmarkWALRecovery(b *testing.B) {
	const streams, entriesPer = 64, 1563 // ~100k entries
	dir := b.TempDir()
	limits := loki.DefaultLimits()
	limits.Shards = 4
	seed := loki.NewStore(limits)
	if _, err := seed.EnableDurability(dir, wal.StoreOptions{}); err != nil {
		b.Fatal(err)
	}
	gen := syslogd.NewGenerator(9, benchHosts(streams)...)
	total := 0
	for e := 0; e < entriesPer; e++ {
		batch := make([]loki.PushStream, streams)
		for s := range batch {
			batch[s] = core.SyslogToLoki(gen.Next(time.Unix(0, int64(e)*1e6)), "perlmutter")
		}
		if err := seed.Push(batch); err != nil {
			b.Fatal(err)
		}
		total += streams
	}
	// No shutdown: the directory is a crash image and stays replayable.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := loki.NewStore(limits)
		info, err := st.EnableDurability(dir, wal.StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if info.Replayed != total {
			b.Fatalf("replayed %d of %d", info.Replayed, total)
		}
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/recovery")
}

// C1: metric samples.
func BenchmarkOMNIIngestMetrics(b *testing.B) {
	wh := omni.New(omni.Config{})
	ls := make([]labels.Labels, 64)
	for i := range ls {
		ls[i] = labels.FromStrings("xname", fmt.Sprintf("x1000c0s%db0n0", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wh.IngestMetric("cray_telemetry_temperature", ls[i%64], int64(i), 45); err != nil {
			b.Fatal(err)
		}
	}
}

// C1: the paper's mixed event/metric stream, batched as the Telemetry API
// clients batch it.
func BenchmarkOMNIIngestMixedBatch(b *testing.B) {
	wh := omni.New(omni.Config{})
	gen := syslogd.NewGenerator(2, benchHosts(64)...)
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		batch := make([]loki.PushStream, 64)
		for j := range batch {
			ts += 1e6
			batch[j] = core.SyslogToLoki(gen.Next(time.Unix(0, ts)), "perlmutter")
		}
		if err := wh.IngestLogs(batch); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 16; j++ {
			_ = wh.IngestMetric("cray_telemetry_power", labels.FromStrings("xname", "x1000c0s0b0n0"), ts/1e6+int64(j), 520)
		}
	}
}

// C2: sustained byte throughput (SetBytes makes go test report MB/s; the
// paper's 400 GB/day is ~4.6 MB/s).
func BenchmarkSustainedBytes(b *testing.B) {
	wh := omni.New(omni.Config{})
	gen := syslogd.NewGenerator(3, benchHosts(128)...)
	lines := make([]syslogd.Message, 512)
	var total int
	for i := range lines {
		lines[i] = gen.Next(time.Unix(0, int64(i)))
		total += len(lines[i].Text)
	}
	b.SetBytes(int64(total / len(lines)))
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		m := lines[i%len(lines)]
		ts += 1e6
		m.Timestamp = time.Unix(0, ts)
		if err := wh.IngestLogs([]loki.PushStream{core.SyslogToLoki(m, "perlmutter")}); err != nil {
			b.Fatal(err)
		}
	}
}

// C3: the same entries under three label schemes. More labels -> more
// streams -> more, smaller chunks -> slower pushes; run with -bench
// LabelCardinality and compare ns/op plus the streams metric.
func BenchmarkLabelCardinality(b *testing.B) {
	schemes := []struct {
		name string
		lbls func(m syslogd.Message, i int) labels.Labels
	}{
		{"paper3", func(m syslogd.Message, i int) labels.Labels {
			return labels.FromStrings("cluster", "perlmutter", "data_type", "syslog", "hostname", m.Hostname)
		}},
		{"plus2", func(m syslogd.Message, i int) labels.Labels {
			return labels.FromStrings("cluster", "perlmutter", "data_type", "syslog", "hostname", m.Hostname, "app", m.App, "severity", m.SeverityName())
		}},
		{"uniqueID", func(m syslogd.Message, i int) labels.Labels {
			return labels.FromStrings("cluster", "perlmutter", "data_type", "syslog", "hostname", m.Hostname, "req", fmt.Sprintf("%d", i))
		}},
	}
	for _, sc := range schemes {
		b.Run(sc.name, func(b *testing.B) {
			store := loki.NewStore(loki.Limits{MaxLabelNamesPerStream: 20, MaxLineSize: 1 << 20,
				ChunkOptions: chunkenc.Options{TargetSize: 256 * 1024}})
			gen := syslogd.NewGenerator(4, benchHosts(32)...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := gen.Next(time.Unix(0, int64(i)*1e6))
				err := store.Push([]loki.PushStream{{
					Labels:  sc.lbls(m, i),
					Entries: []loki.Entry{{Timestamp: m.Timestamp.UnixNano(), Line: m.Text}},
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := store.Stats()
			b.ReportMetric(float64(st.Streams), "streams")
			b.ReportMetric(float64(st.Chunks), "chunks")
		})
	}
}

// C4: compression ratio of sealed chunks per corpus.
func BenchmarkChunkCompression(b *testing.B) {
	corpora := []struct {
		name string
		line func(gen *syslogd.Generator, i int) string
	}{
		{"redfish", func(*syslogd.Generator, int) string { return leakLine }},
		{"syslog", func(gen *syslogd.Generator, i int) string { return gen.Next(time.Unix(int64(i), 0)).Text }},
	}
	for _, c := range corpora {
		b.Run(c.name, func(b *testing.B) {
			gen := syslogd.NewGenerator(5, "nid000001")
			var raw, compressed int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ch := chunkenc.New(chunkenc.Options{TargetSize: 1 << 30, MaxEntries: 1 << 30})
				for j := 0; j < 2000; j++ {
					if err := ch.Append(chunkenc.Entry{Timestamp: int64(j) * 1e9, Line: c.line(gen, j)}); err != nil {
						b.Fatal(err)
					}
				}
				if err := ch.Close(); err != nil {
					b.Fatal(err)
				}
				raw, compressed = ch.RawBytes(), ch.CompressedBytes()
			}
			b.ReportMetric(float64(raw)/float64(compressed), "compression-ratio")
		})
	}
}

// C5: the paper's Loki deployment runs 8 worker nodes. The store now
// shards internally (Limits.Shards lock stripes), so this drives ONE
// store from N concurrent pushers, each owning the streams whose
// fingerprint hashes to it — contention is whatever the store's own
// striping leaves, not an artifact of running N separate stores.
func BenchmarkShardedIngest(b *testing.B) {
	gen := syslogd.NewGenerator(6, benchHosts(256)...)
	msgs := make([]loki.PushStream, 4096)
	for i := range msgs {
		msgs[i] = core.SyslogToLoki(gen.Next(time.Unix(0, int64(i)*1e6)), "perlmutter")
	}
	run := func(shards, pushers int) func(b *testing.B) {
		return func(b *testing.B) {
			limits := loki.DefaultLimits()
			limits.Shards = shards
			store := loki.NewStore(limits)
			// Pre-partition so each pusher owns whole streams and pushes
			// stay in timestamp order within a stream.
			parts := make([][]loki.PushStream, shards)
			for _, ps := range msgs {
				w := int(uint64(ps.Labels.Fingerprint()) % uint64(shards))
				parts[w] = append(parts[w], ps)
			}
			push := func(base int64, part []loki.PushStream) {
				for j, ps := range part {
					e := ps.Entries[0]
					e.Timestamp = base + int64(j)*1e3
					if err := store.Push([]loki.PushStream{{Labels: ps.Labels, Entries: []loki.Entry{e}}}); err != nil {
						b.Error(err)
						return
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Advance timestamps each iteration so the single shared
				// store keeps accepting in-order entries.
				base := int64(i+1) * int64(len(msgs)) * 1e6
				if pushers == 1 {
					// Serial control: same striped store, no goroutine
					// fan-out — isolates scheduler overhead from the cost
					// of striping itself.
					for w := 0; w < shards; w++ {
						push(base, parts[w])
					}
				} else {
					var wg sync.WaitGroup
					for w := 0; w < shards; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							push(base, parts[w])
						}(w)
					}
					wg.Wait()
				}
			}
			b.StopTimer()
			pushes := store.ShardPushes()
			busy := 0
			for _, n := range pushes {
				if n > 0 {
					busy++
				}
			}
			b.ReportMetric(float64(busy), "busy-shards")
		}
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), run(shards, shards))
		if shards > 1 {
			b.Run(fmt.Sprintf("shards=%d,pushers=1", shards), run(shards, 1))
		}
	}
}

// C1 (parallel): the same ingest path driven from GOMAXPROCS goroutines,
// each goroutine owning a distinct stream so pushes never interleave
// out of order. Run with -cpu 1,4,8 on a multi-core machine to see the
// lock-striped scaling; msgs/s is 1e9/(ns/op).
func BenchmarkOMNIIngestLogsParallel(b *testing.B) {
	wh := omni.New(omni.Config{})
	var goroutineID atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := goroutineID.Add(1)
		ls := labels.FromStrings("cluster", "perlmutter", "data_type", "syslog",
			"hostname", fmt.Sprintf("nid%06d", id))
		line := fmt.Sprintf("nid%06d sshd[12345]: Accepted publickey for user from 10.0.0.%d", id, id%256)
		ts := int64(0)
		for pb.Next() {
			ts += 1e6
			err := wh.IngestLogs([]loki.PushStream{{
				Labels:  ls,
				Entries: []loki.Entry{{Timestamp: ts, Line: line}},
			}})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// Tenancy guardrail: multi-tenant plumbing must be near-free when
// unused. Both variants run the exact BenchmarkOMNIIngestLogs loop on
// the default tenant; "off" has no tenant overrides configured, "on"
// carries a full overrides table (default limits generous enough to
// never shed, plus a per-tenant entry) so every push pays the limit
// lookup and rate-limiter check. BENCH_ingest.json tracks the pair; the
// acceptance bar is <5% overhead.
func BenchmarkTenantIngest(b *testing.B) {
	run := func(b *testing.B, wh *omni.Warehouse) {
		gen := syslogd.NewGenerator(1, benchHosts(64)...)
		msgs := make([]loki.PushStream, 256)
		for i := range msgs {
			msgs[i] = core.SyslogToLoki(gen.Next(time.Unix(0, int64(i))), "perlmutter")
		}
		b.ReportAllocs()
		b.ResetTimer()
		ts := int64(0)
		for i := 0; i < b.N; i++ {
			ps := msgs[i%len(msgs)]
			ts += 1e6
			ps.Entries = []loki.Entry{{Timestamp: ts, Line: ps.Entries[0].Line}}
			if err := wh.IngestLogs([]loki.PushStream{ps}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, omni.New(omni.Config{}))
	})
	b.Run("on", func(b *testing.B) {
		run(b, omni.New(omni.Config{TenantOverrides: &tenant.Overrides{
			Defaults: tenant.Limits{
				MaxStreams:       1 << 30,
				IngestRateBytes:  1 << 40,
				IngestBurstBytes: 1 << 40,
			},
			PerTenant: map[string]tenant.Limits{"hpc-a": {MaxStreams: 64}},
		}}))
	})
}

func loadLeakStore(b *testing.B, events int) *loki.Store {
	b.Helper()
	store := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	entries := make([]loki.Entry, events)
	for i := range entries {
		entries[i] = loki.Entry{Timestamp: int64(i) * 1e6, Line: leakLine}
	}
	if err := store.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
		b.Fatal(err)
	}
	return store
}

// E4 / Fig. 5: the paper's leak query over 10k stored events. The run
// also reports per-op bytes scanned and the chunk-cache hit ratio from
// the query statistics context — the scan-volume numbers bench.sh lands
// in BENCH_ingest.json.
func BenchmarkFig5Query(b *testing.B) {
	store := loadLeakStore(b, 10000)
	eng := logql.NewEngine(store)
	expr, err := logql.ParseMetricExpr(`sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id, message)`)
	if err != nil {
		b.Fatal(err)
	}
	ctx, sc := stats.NewContext(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec, err := eng.InstantContext(ctx, expr, int64(time.Hour))
		if err != nil || len(vec) == 0 {
			b.Fatalf("%v %v", vec, err)
		}
	}
	b.StopTimer()
	snap := sc.Snapshot()
	b.ReportMetric(float64(snap.Summary.TotalBytesProcessed)/float64(b.N), "bytes-scanned")
	if total := snap.Store.CacheHits + snap.Store.CacheMisses; total > 0 {
		b.ReportMetric(float64(snap.Store.CacheHits)/float64(total), "cache-hit-ratio")
	}
}

// E4 (range) / Fig. 5 as a dashboard panel: the leak query evaluated as
// a range query the way Grafana refreshes it, over 10k events spread
// across one hour. Three variants measure the query frontend:
//
//	mono  the engine's monolithic range pass (no frontend) — baseline
//	cold  frontend splitting + shard fan-out, results cache disabled
//	warm  frontend with a primed results cache — the steady-state
//	      refresh, which should be a small multiple of pure merge cost
//
// Run with -cpu 1,2,4,8 for the QueryScaling series: cold speedup over
// mono is what time-split parallelism buys per core.
func BenchmarkFig5QueryRange(b *testing.B) {
	limits := loki.DefaultLimits()
	limits.Shards = 4
	store := loki.NewStore(limits)
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	entries := make([]loki.Entry, 10000)
	for i := range entries {
		entries[i] = loki.Entry{Timestamp: int64(i) * 360 * 1e6, Line: leakLine} // one hour span
	}
	if err := store.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
		b.Fatal(err)
	}
	const q = `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [5m])) by (Context)`
	const start, end = int64(0), int64(time.Hour)
	farFuture := func() time.Time { return time.Unix(1<<32, 0) }

	run := func(eng *logql.Engine, prime bool) func(b *testing.B) {
		return func(b *testing.B) {
			if prime {
				if _, err := eng.QueryRange(q, start, end, time.Minute); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := eng.QueryRange(q, start, end, time.Minute)
				if err != nil || len(m) == 0 {
					b.Fatalf("%v %v", m, err)
				}
			}
		}
	}

	mono := logql.NewEngine(store)
	cold := logql.NewEngine(store)
	cold.SetFrontend(frontend.New(frontend.Config{CacheBytes: -1, Now: farFuture}))
	warm := logql.NewEngine(store)
	warm.SetFrontend(frontend.New(frontend.Config{Now: farFuture}))

	// Golden guard: the three paths must agree before timing means anything.
	want, err := mono.QueryRange(q, start, end, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	for name, eng := range map[string]*logql.Engine{"cold": cold, "warm": warm} {
		got, err := eng.QueryRange(q, start, end, time.Minute)
		if err != nil || fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
			b.Fatalf("%s result differs from monolithic (%v)", name, err)
		}
	}

	b.Run("mono", run(mono, false))
	b.Run("cold", run(cold, false))
	b.Run("warm", run(warm, true))
}

// E7 / Fig. 8: the switch pattern query over 10k events.
func BenchmarkFig8Query(b *testing.B) {
	store := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("app", "fabric_manager_monitor", "cluster", "perlmutter")
	entries := make([]loki.Entry, 10000)
	for i := range entries {
		entries[i] = loki.Entry{
			Timestamp: int64(i) * 1e6,
			Line:      fmt.Sprintf("[critical] problem:fm_switch_offline, xname:x1002c%dr%db0, state:UNKNOWN", i%8, i%64/8),
		}
	}
	if err := store.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
		b.Fatal(err)
	}
	eng := logql.NewEngine(store)
	expr, err := logql.ParseMetricExpr(`sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<sev>] problem:<problem>, xname:<xname>, state:<state>" [60m])) by (xname, state)`)
	if err != nil {
		b.Fatal(err)
	}
	ctx, sc := stats.NewContext(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec, err := eng.InstantContext(ctx, expr, int64(time.Hour))
		if err != nil || len(vec) != 64 {
			b.Fatalf("%d %v", len(vec), err)
		}
	}
	b.StopTimer()
	snap := sc.Snapshot()
	b.ReportMetric(float64(snap.Summary.TotalBytesProcessed)/float64(b.N), "bytes-scanned")
	if total := snap.Store.CacheHits + snap.Store.CacheMisses; total > 0 {
		b.ReportMetric(float64(snap.Store.CacheHits)/float64(total), "cache-hit-ratio")
	}
}

// C7: wall-clock cost of one full pipeline evaluation cycle — collect,
// forward, poll, scrape, evaluate both rule engines, flush. The report
// includes the pipeline's own obs counters so a run shows how much work
// each tick actually did.
func BenchmarkPipelineTick(b *testing.B) {
	p, err := core.New(core.Options{LogRules: []ruler.Rule{experiments.LeakRule, experiments.SwitchRule}})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	now := time.Date(2022, 3, 3, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		if err := p.Tick(now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fams := p.Gather()
	n := float64(b.N)
	b.ReportMetric(obs.Value(fams, "shastamon_hms_events_collected_total")/n, "events/tick")
	b.ReportMetric(obs.Value(fams, "shastamon_hms_samples_collected_total")/n, "samples/tick")
	b.ReportMetric(obs.Value(fams, "shastamon_core_records_forwarded_total")/n, "records/tick")
	b.ReportMetric(obs.Value(fams, "shastamon_ruler_alerts_fired_total")+
		obs.Value(fams, "shastamon_vmalert_alerts_fired_total"), "alerts-fired")
}

// Alertmanager grouping fan-in: many alerts, few groups.
func BenchmarkAlertmanagerFanout(b *testing.B) {
	rcv := receiverFunc("null")
	now := time.Unix(0, 0)
	m, err := alertmanager.New(alertmanager.Config{
		Route:     &alertmanager.Route{Receiver: "null", GroupWait: time.Nanosecond, GroupBy: []string{"severity"}},
		Receivers: []alertmanager.Receiver{rcv},
		Now:       func() time.Time { return now },
	})
	if err != nil {
		b.Fatal(err)
	}
	sevs := []string{"critical", "warning", "info"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Receive(alertmanager.Alert{Labels: labels.FromStrings(
			"alertname", "X", "severity", sevs[i%3], "xname", fmt.Sprintf("x%d", i%512))})
		if i%256 == 255 {
			now = now.Add(time.Second)
			m.Flush()
		}
	}
}

type receiverFunc string

func (r receiverFunc) Name() string                         { return string(r) }
func (receiverFunc) Notify(alertmanager.Notification) error { return nil }

// Ablation: Loki's design premise — selecting one stream by label beats
// grepping every stream's content. 64 streams, query one host's errors.
func BenchmarkIndexedVsGrep(b *testing.B) {
	store := loki.NewStore(loki.DefaultLimits())
	gen := syslogd.NewGenerator(8, benchHosts(64)...)
	for i := 0; i < 64*500; i++ {
		m := gen.Next(time.Unix(0, int64(i)*1e6))
		err := store.Push([]loki.PushStream{{
			Labels:  labels.FromStrings("hostname", m.Hostname, "data_type", "syslog"),
			Entries: []loki.Entry{{Timestamp: m.Timestamp.UnixNano(), Line: m.Hostname + " " + m.App + ": " + m.Text}},
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	eng := logql.NewEngine(store)
	b.Run("indexed-label-select", func(b *testing.B) {
		expr, _ := logql.ParseLogExpr(`{hostname="nid000001"} |= "sshd"`)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SelectLogs(expr, 0, 1<<62); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-grep", func(b *testing.B) {
		expr, _ := logql.ParseLogExpr(`{data_type="syslog"} |= "nid000001" |= "sshd"`)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.SelectLogs(expr, 0, 1<<62); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: Loki's label-index-plus-grep versus the Elasticsearch-style
// full-text index OMNI also runs. Full-text pays ~10x at write time to
// answer rare-term queries without scanning; Loki writes cheaply and
// scans on read. The paper's OMNI keeps both.
func BenchmarkLogIndexDesigns(b *testing.B) {
	const total = 32000
	gen := syslogd.NewGenerator(13, benchHosts(64)...)
	lines := make([]syslogd.Message, total)
	for i := range lines {
		lines[i] = gen.Next(time.Unix(0, int64(i)*1e6))
	}
	b.Run("write/loki", func(b *testing.B) {
		store := loki.NewStore(loki.DefaultLimits())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := lines[i%total]
			_ = store.Push([]loki.PushStream{{
				Labels:  labels.FromStrings("hostname", m.Hostname, "data_type", "syslog"),
				Entries: []loki.Entry{{Timestamp: int64(i) * 1e6, Line: m.Text}},
			}})
		}
	})
	b.Run("write/fulltext", func(b *testing.B) {
		ix := eventsearch.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := lines[i%total]
			ix.Add(time.Unix(0, int64(i)*1e6), nil, m.Hostname+" "+m.App+": "+m.Text)
		}
	})
	// Read side: find the rare GPFS failure among routine noise.
	store := loki.NewStore(loki.DefaultLimits())
	ix := eventsearch.New()
	for i, m := range lines {
		text := m.Hostname + " " + m.App + ": " + m.Text
		if i%4000 == 0 {
			text = m.Hostname + " mmfs: GPFS: Disk failure detected on rg001"
		}
		_ = store.Push([]loki.PushStream{{
			Labels:  labels.FromStrings("data_type", "syslog"),
			Entries: []loki.Entry{{Timestamp: int64(i) * 1e6, Line: text}},
		}})
		ix.Add(time.Unix(0, int64(i)*1e6), nil, text)
	}
	eng := logql.NewEngine(store)
	b.Run("read/loki-grep", func(b *testing.B) {
		expr, _ := logql.ParseLogExpr(`{data_type="syslog"} |= "Disk failure"`)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			streams, err := eng.SelectLogs(expr, 0, 1<<62)
			if err != nil || len(streams) == 0 {
				b.Fatalf("%v %v", streams, err)
			}
		}
	})
	b.Run("read/fulltext-term", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := ix.Search(eventsearch.Query{Terms: []string{"disk", "failure"}, Limit: 100})
			if len(hits) != 8 {
				b.Fatalf("%d", len(hits))
			}
		}
	})
}

// Ablation: chunk target size. Bigger chunks amortise sealing cost and
// compress better ("Loki prefers handling bigger but fewer chunks") at
// the price of more uncompressed head memory.
func BenchmarkChunkTargetSize(b *testing.B) {
	for _, target := range []int{64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dKiB", target>>10), func(b *testing.B) {
			store := loki.NewStore(loki.Limits{
				MaxLabelNamesPerStream: 10, MaxLineSize: 1 << 20,
				ChunkOptions: chunkenc.Options{TargetSize: target},
			})
			gen := syslogd.NewGenerator(14, benchHosts(8)...)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := gen.Next(time.Unix(0, int64(i)*1e6))
				err := store.Push([]loki.PushStream{{
					Labels:  labels.FromStrings("hostname", m.Hostname),
					Entries: []loki.Entry{{Timestamp: int64(i) * 1e6, Line: m.Text}},
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := store.Flush(); err != nil {
				b.Fatal(err)
			}
			st := store.Stats()
			b.ReportMetric(float64(st.Chunks), "chunks")
			if st.CompressedBytes > 0 {
				b.ReportMetric(float64(st.RawBytes)/float64(st.CompressedBytes), "compression-ratio")
			}
		})
	}
}
