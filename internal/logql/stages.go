package logql

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"shastamon/internal/labels"
)

// Stage is one step of a log pipeline. Process receives the current line
// and label set and returns the (possibly rewritten) line, the (possibly
// extended) labels, and whether the entry survives the stage.
type Stage interface {
	Process(line string, lbls labels.Labels) (string, labels.Labels, bool)
	String() string
}

// ---- line filters: |= != |~ !~ ----

type lineFilterStage struct {
	op    tokKind // tokPipeExact, tokNeq, tokPipeMatch, tokNre
	match string
	re    *regexp.Regexp
}

func newLineFilter(op tokKind, match string) (Stage, error) {
	s := &lineFilterStage{op: op, match: match}
	if op == tokPipeMatch || op == tokNre {
		re, err := regexp.Compile(match)
		if err != nil {
			return nil, fmt.Errorf("logql: line filter regexp: %w", err)
		}
		s.re = re
	}
	return s, nil
}

func (s *lineFilterStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	switch s.op {
	case tokPipeExact:
		return line, lbls, strings.Contains(line, s.match)
	case tokNeq:
		return line, lbls, !strings.Contains(line, s.match)
	case tokPipeMatch:
		return line, lbls, s.re.MatchString(line)
	case tokNre:
		return line, lbls, !s.re.MatchString(line)
	}
	return line, lbls, false
}

func (s *lineFilterStage) String() string {
	return s.op.String() + " " + strconv.Quote(s.match)
}

// ---- json parser: | json ----

// jsonStage extracts top-level (and nested, underscore-flattened) JSON
// fields into labels. CamelCase keys are normalised to snake_case so the
// paper's queries (severity, message_id) address fields of Redfish events
// (Severity, MessageId) verbatim. Existing labels are never overwritten.
type jsonStage struct{}

func (jsonStage) String() string { return "| json" }

func (jsonStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	var v map[string]interface{}
	if err := json.Unmarshal([]byte(line), &v); err != nil {
		// Loki marks unparsable lines with __error__ and lets them through.
		return line, lbls.With("__error__", "JSONParserErr"), true
	}
	b := labels.NewBuilder(lbls)
	flattenJSON("", v, lbls, b)
	return line, b.Labels(), true
}

func flattenJSON(prefix string, v map[string]interface{}, base labels.Labels, b *labels.Builder) {
	for k, val := range v {
		name := toSnake(k)
		if prefix != "" {
			name = prefix + "_" + name
		}
		switch t := val.(type) {
		case map[string]interface{}:
			flattenJSON(name, t, base, b)
		case string:
			if !base.Has(name) {
				b.Set(name, t)
			}
		case float64:
			if !base.Has(name) {
				b.Set(name, strconv.FormatFloat(t, 'g', -1, 64))
			}
		case bool:
			if !base.Has(name) {
				b.Set(name, strconv.FormatBool(t))
			}
		case nil:
			// skip nulls
		default:
			// arrays: stored as compact JSON
			if !base.Has(name) {
				enc, err := json.Marshal(t)
				if err == nil {
					b.Set(name, string(enc))
				}
			}
		}
	}
}

// toSnake converts CamelCase to snake_case and sanitises characters that
// are invalid in label names.
func toSnake(s string) string {
	var b strings.Builder
	var prevLower bool
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			if prevLower {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			prevLower = false
		case r == '.' || r == '-' || r == ' ' || r == '@':
			b.WriteByte('_')
			prevLower = false
		default:
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		}
	}
	return b.String()
}

// ---- logfmt parser: | logfmt ----

type logfmtStage struct{}

func (logfmtStage) String() string { return "| logfmt" }

func (logfmtStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	b := labels.NewBuilder(lbls)
	for _, kv := range parseLogfmt(line) {
		name := toSnake(kv[0])
		if name == "" || lbls.Has(name) {
			continue
		}
		b.Set(name, kv[1])
	}
	return line, b.Labels(), true
}

// parseLogfmt extracts key=value pairs; values may be double-quoted.
func parseLogfmt(line string) [][2]string {
	var out [][2]string
	i := 0
	n := len(line)
	for i < n {
		for i < n && line[i] == ' ' {
			i++
		}
		start := i
		for i < n && line[i] != '=' && line[i] != ' ' {
			i++
		}
		if i >= n || line[i] != '=' {
			continue // bare word, skip
		}
		key := line[start:i]
		i++ // '='
		var val string
		if i < n && line[i] == '"' {
			i++
			vs := i
			for i < n && line[i] != '"' {
				if line[i] == '\\' && i+1 < n {
					i++
				}
				i++
			}
			val = strings.ReplaceAll(line[vs:i], `\"`, `"`)
			if i < n {
				i++ // closing quote
			}
		} else {
			vs := i
			for i < n && line[i] != ' ' {
				i++
			}
			val = line[vs:i]
		}
		if key != "" {
			out = append(out, [2]string{key, val})
		}
	}
	return out
}

// ---- pattern parser: | pattern "<a> ... <b>" ----

// patternStage implements Loki's pattern parser, used by the paper's
// switch-offline rule:
//
//	| pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>"
type patternStage struct {
	template string
	parts    []patPart
}

type patPart struct {
	lit     string // literal to match (may be empty for leading capture)
	capture string // capture name following the literal ("" at the tail, "_" to discard)
}

func newPatternStage(template string) (Stage, error) {
	parts, err := parsePatternTemplate(template)
	if err != nil {
		return nil, err
	}
	return &patternStage{template: template, parts: parts}, nil
}

func parsePatternTemplate(t string) ([]patPart, error) {
	var parts []patPart
	i := 0
	lit := strings.Builder{}
	hasCapture := false
	for i < len(t) {
		if t[i] == '<' {
			j := strings.IndexByte(t[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("logql: pattern: unclosed capture in %q", t)
			}
			name := t[i+1 : i+j]
			if name == "" {
				return nil, fmt.Errorf("logql: pattern: empty capture in %q", t)
			}
			for _, r := range name {
				if !isIdentPart(byte(r)) {
					return nil, fmt.Errorf("logql: pattern: bad capture name %q", name)
				}
			}
			parts = append(parts, patPart{lit: lit.String(), capture: name})
			lit.Reset()
			hasCapture = true
			i += j + 1
			continue
		}
		lit.WriteByte(t[i])
		i++
	}
	if lit.Len() > 0 {
		parts = append(parts, patPart{lit: lit.String()})
	}
	if !hasCapture {
		return nil, fmt.Errorf("logql: pattern: no captures in %q", t)
	}
	return parts, nil
}

func (s *patternStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	caps, ok := matchPattern(s.parts, line)
	if !ok {
		return line, lbls.With("__error__", "PatternParserErr"), true
	}
	b := labels.NewBuilder(lbls)
	for name, val := range caps {
		if name == "_" || lbls.Has(name) {
			continue
		}
		b.Set(name, val)
	}
	return line, b.Labels(), true
}

func matchPattern(parts []patPart, line string) (map[string]string, bool) {
	caps := map[string]string{}
	pos := 0
	for idx, p := range parts {
		if p.lit != "" {
			at := strings.Index(line[pos:], p.lit)
			if at < 0 {
				return nil, false
			}
			if idx == 0 && at != 0 {
				// A leading literal must anchor at the start.
				return nil, false
			}
			if idx > 0 && parts[idx-1].capture != "" {
				caps[parts[idx-1].capture] = line[pos : pos+at]
			}
			pos += at + len(p.lit)
		}
		if p.capture != "" && idx == len(parts)-1 {
			// trailing capture takes the rest of the line
			caps[p.capture] = line[pos:]
			pos = len(line)
		}
	}
	return caps, true
}

func (s *patternStage) String() string { return "| pattern " + strconv.Quote(s.template) }

// ---- regexp parser: | regexp "(?P<name>...)" ----

type regexpStage struct {
	expr string
	re   *regexp.Regexp
}

func newRegexpStage(expr string) (Stage, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("logql: regexp parser: %w", err)
	}
	names := 0
	for _, n := range re.SubexpNames() {
		if n != "" {
			names++
		}
	}
	if names == 0 {
		return nil, fmt.Errorf("logql: regexp parser needs named captures: %q", expr)
	}
	return &regexpStage{expr: expr, re: re}, nil
}

func (s *regexpStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	m := s.re.FindStringSubmatch(line)
	if m == nil {
		return line, lbls.With("__error__", "RegexpParserErr"), true
	}
	b := labels.NewBuilder(lbls)
	for i, name := range s.re.SubexpNames() {
		if name == "" || i >= len(m) || lbls.Has(name) {
			continue
		}
		b.Set(name, m[i])
	}
	return line, b.Labels(), true
}

func (s *regexpStage) String() string { return "| regexp " + strconv.Quote(s.expr) }

// ---- label filter: | severity="Warning", | value > 5 ----

type labelFilterStage struct {
	// exactly one of matcher / numeric is set
	matcher *labels.Matcher
	name    string
	op      CmpOp
	num     float64
}

func (s *labelFilterStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	if s.matcher != nil {
		return line, lbls, s.matcher.Matches(lbls.Get(s.matcher.Name))
	}
	v, err := strconv.ParseFloat(lbls.Get(s.name), 64)
	if err != nil {
		return line, lbls, false
	}
	return line, lbls, s.op.apply(v, s.num)
}

func (s *labelFilterStage) String() string {
	if s.matcher != nil {
		return "| " + s.matcher.String()
	}
	return fmt.Sprintf("| %s %s %g", s.name, s.op, s.num)
}

// ---- line_format: | line_format "{{.severity}}: {{.message}}" ----

// lineFormatStage rewrites the line from a template referencing labels via
// {{.name}} placeholders (the subset of Go template syntax Loki queries in
// the paper's context need).
type lineFormatStage struct {
	template string
}

var tmplRef = regexp.MustCompile(`\{\{\s*\.([a-zA-Z_][a-zA-Z0-9_]*)\s*\}\}`)

func (s *lineFormatStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	out := tmplRef.ReplaceAllStringFunc(s.template, func(m string) string {
		name := tmplRef.FindStringSubmatch(m)[1]
		return lbls.Get(name)
	})
	return out, lbls, true
}

func (s *lineFormatStage) String() string { return "| line_format " + strconv.Quote(s.template) }

// ---- label_format: | label_format dst=src or dst="{{.a}}-{{.b}}" ----

type labelFormatStage struct {
	dst      string
	src      string // rename source; mutually exclusive with template
	template string
}

func (s *labelFormatStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	b := labels.NewBuilder(lbls)
	if s.template != "" {
		val := tmplRef.ReplaceAllStringFunc(s.template, func(m string) string {
			name := tmplRef.FindStringSubmatch(m)[1]
			return lbls.Get(name)
		})
		b.Set(s.dst, val)
	} else {
		b.Set(s.dst, lbls.Get(s.src))
		b.Del(s.src)
	}
	return line, b.Labels(), true
}

func (s *labelFormatStage) String() string {
	if s.template != "" {
		return fmt.Sprintf("| label_format %s=%s", s.dst, strconv.Quote(s.template))
	}
	return fmt.Sprintf("| label_format %s=%s", s.dst, s.src)
}

// runPipeline applies all stages to an entry.
func runPipeline(stages []Stage, line string, lbls labels.Labels) (string, labels.Labels, bool) {
	ok := true
	for _, st := range stages {
		line, lbls, ok = st.Process(line, lbls)
		if !ok {
			return line, lbls, false
		}
	}
	return line, lbls, true
}
