package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
)

// The pipeline survives a dead notification receiver: alerts are
// evaluated and routed, the receiver error is collected, and the rest of
// the pipeline keeps moving.
func TestPipelineSurvivesReceiverFailure(t *testing.T) {
	bad := &failingReceiver{name: "slack"}
	route := &alertmanager.Route{Receiver: "slack", GroupWait: time.Nanosecond}
	p := newPipeline(t, Options{LogRules: []ruler.Rule{switchRule}, Route: route})
	// Swap the real Slack notifier for one that always fails by rebuilding
	// the Alertmanager with the failing receiver.
	am, err := alertmanager.New(alertmanager.Config{
		Route:     route,
		Receivers: []alertmanager.Receiver{bad},
		Now:       p.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Alertmanager = am
	r, err := ruler.New(p.Warehouse.LogQL, am, p.Now, switchRule)
	if err != nil {
		t.Fatal(err)
	}
	p.Ruler = r

	t0 := time.Date(2022, 3, 3, 5, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	_ = p.Cluster.SetSwitchState("x1002c0r0b0", shasta.SwitchOffline)
	mustTick(t, p, t0.Add(time.Minute))
	mustTick(t, p, t0.Add(time.Minute+time.Second))

	errs := p.Alertmanager.NotifyErrors()
	if len(errs) == 0 {
		t.Fatal("receiver failure not surfaced")
	}
	if !strings.Contains(errs[0].Error(), "receiver slack") {
		t.Fatalf("err: %v", errs[0])
	}
	// Subsequent ticks still work.
	mustTick(t, p, t0.Add(2*time.Minute))
}

type failingReceiver struct{ name string }

func (f *failingReceiver) Name() string { return f.name }
func (f *failingReceiver) Notify(alertmanager.Notification) error {
	return errTest
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "injected failure" }

// Authentication: a telemetry token protects the API; the pipeline's own
// client carries it, so ticks work while tokenless clients are rejected.
func TestPipelineWithAuthToken(t *testing.T) {
	p := newPipeline(t, Options{Token: "s3cret"})
	mustTick(t, p, time.Date(2022, 3, 3, 6, 0, 0, 0, time.UTC))
	if p.Warehouse.Stats().MetricStore.Samples == 0 {
		t.Fatal("no samples flowed with auth enabled")
	}
}

// An out-of-order regression injected between ticks is dropped and counted
// rather than corrupting streams.
func TestPipelineHandlesClockRegression(t *testing.T) {
	p := newPipeline(t, Options{})
	t0 := time.Date(2022, 3, 3, 7, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", t0); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, t0.Add(time.Second))
	// Same chassis reports an *older* event (clock skew on the BMC).
	if err := p.Cluster.InjectLeak("x1203c1b0", "B", "Front", t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	// The forwarder tolerates the ordering reject: the tick succeeds, the
	// entry is dropped and counted.
	mustTick(t, p, t0.Add(2*time.Second))
	if got := p.Warehouse.Stats().LogStore.DiscardedOOO; got != 1 {
		t.Fatalf("discarded = %d", got)
	}
	streams, err := p.Warehouse.LogQL.QueryLogs(`{data_type="redfish_event"}`, 0, t0.Add(time.Hour).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 || len(streams[0].Entries) != 1 {
		t.Fatalf("%+v", streams)
	}
}

func TestSinglePaneDashboard(t *testing.T) {
	p := newPipeline(t, Options{})
	t0 := time.Date(2022, 3, 3, 8, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	_ = p.Cluster.InjectLeak("x1203c1b0", "A", "Front", t0.Add(time.Second))
	mustTick(t, p, t0.Add(2*time.Second))
	out, err := p.RenderSinglePane(t0.Add(-time.Hour), t0.Add(time.Minute), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Single Pane of Glass",
		"Redfish events (Loki)",
		"CabinetLeakDetected",
		"Node temperature",
		"Exporter targets up",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

// The default routing tree sends critical alerts to ServiceNow AND Slack,
// and non-critical ones to Slack only.
func TestDefaultRouteSeverity(t *testing.T) {
	warnRule := ruler.Rule{
		Name:   "WarnOnly",
		Expr:   `sum(count_over_time({data_type="syslog"}[5m])) > 0`,
		Labels: map[string]string{"severity": "warning"},
	}
	p := newPipeline(t, Options{LogRules: []ruler.Rule{warnRule}})
	t0 := time.Date(2022, 3, 3, 9, 0, 0, 0, time.UTC)
	err := p.Warehouse.IngestLogs([]loki.PushStream{{
		Labels:  labels.FromStrings("data_type", "syslog", "hostname", "nid1"),
		Entries: []loki.Entry{{Timestamp: t0.UnixNano(), Line: "warning-worthy line"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, t0.Add(time.Second))
	mustTick(t, p, t0.Add(2*time.Second))
	if len(p.Slack.Messages()) == 0 {
		t.Fatal("warning alert missed slack")
	}
	if len(p.ServiceNow.Alerts()) != 0 {
		t.Fatalf("warning alert reached servicenow: %+v", p.ServiceNow.Alerts())
	}
}

// A silence added through the Alertmanager API suppresses notifications
// end to end while leaving evaluation running.
func TestSilenceSuppressesNotifications(t *testing.T) {
	p := newPipeline(t, Options{LogRules: []ruler.Rule{switchRule}})
	t0 := time.Date(2022, 3, 3, 10, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	p.SetNow(t0)
	p.Alertmanager.AddSilence(alertmanager.Silence{
		Matchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "alertname", "SwitchOffline")},
		StartsAt: t0.Add(-time.Minute),
		EndsAt:   t0.Add(time.Hour),
		Comment:  "planned fabric maintenance",
	})
	_ = p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown)
	mustTick(t, p, t0.Add(time.Minute))
	mustTick(t, p, t0.Add(time.Minute+time.Second))
	if len(p.Slack.Messages()) != 0 {
		t.Fatalf("silenced alert notified: %+v", p.Slack.Messages())
	}
	if len(p.ServiceNow.Alerts()) != 0 {
		t.Fatalf("silenced alert reached servicenow")
	}
	// The alert is still tracked, just suppressed.
	alerts := p.Alertmanager.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("%+v", alerts)
	}
	if st := p.Alertmanager.AlertStatus(alerts[0]); st != alertmanager.StatusSuppressed {
		t.Fatalf("status %s", st)
	}
}

// Run drives the pipeline on wall-clock time; a brief run must tick at
// least once and stop cleanly on cancellation.
func TestRunWallClock(t *testing.T) {
	p := newPipeline(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx, 5*time.Millisecond) }()
	deadline := time.After(5 * time.Second)
	for p.Warehouse.Stats().MetricStore.Samples == 0 {
		select {
		case <-deadline:
			t.Fatal("no samples after 5s of Run")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

// Inhibition: while the chassis power alert fires, switch alerts from the
// same chassis are muted — the paper's alert-noise reduction.
func TestInhibitionReducesNoise(t *testing.T) {
	powerRule := ruler.Rule{
		Name:   "ChassisPowerDown",
		Expr:   `sum(count_over_time({data_type="redfish_event"} |= "power state" |= "Off" [10m])) by (Context) > 0`,
		Labels: map[string]string{"severity": "critical"},
	}
	swRule := switchRule // pattern-extracts xname; add chassis via label_format? use Context-free match
	p := newPipeline(t, Options{
		LogRules: []ruler.Rule{powerRule, swRule},
		Inhibit: []alertmanager.InhibitRule{{
			SourceMatchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "alertname", "ChassisPowerDown")},
			TargetMatchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "alertname", "SwitchOffline")},
			// No Equal labels: any power-down mutes switch noise machine-wide
			// in this test.
		}},
	})
	t0 := time.Date(2022, 3, 3, 12, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	// Chassis x1002c1 loses power; its switches go dark moments later.
	if err := p.Cluster.PowerOff("x1002c1", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	_ = p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchOffline)
	mustTick(t, p, t0.Add(2*time.Second))
	mustTick(t, p, t0.Add(3*time.Second))

	var titles []string
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			titles = append(titles, att.Title)
		}
	}
	for _, title := range titles {
		if title == "SwitchOffline" {
			t.Fatalf("inhibited alert notified: %v", titles)
		}
	}
	found := false
	for _, title := range titles {
		if title == "ChassisPowerDown" {
			found = true
		}
	}
	if !found {
		t.Fatalf("source alert missing: %v", titles)
	}
}
