// Package eventsearch implements the Elasticsearch role in OMNI: the
// paper's warehouse is "backed by a scalable and parallel time-series
// database, Elasticsearch and VictoriaMetrics", with "data ... indexed for
// near real-time retrieval and querying" via a REST API or Kibana. This
// package provides the event-document side: a full-text inverted index
// over timestamped documents with field filters, exposed over an
// ES-flavoured HTTP API.
//
// It also powers the design ablation in bench_test.go: Loki indexes only
// labels and greps content, while this engine pays indexing cost at write
// time for term-lookup reads.
package eventsearch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode"
)

// Doc is one indexed event document.
type Doc struct {
	ID        int               `json:"id"`
	Timestamp time.Time         `json:"timestamp"`
	Fields    map[string]string `json:"fields,omitempty"`
	Text      string            `json:"text"`
}

// Index is an in-memory inverted index, safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	docs     []Doc
	postings map[string][]int // term -> sorted doc ids
	bytes    int64
}

// New returns an empty index.
func New() *Index {
	return &Index{postings: map[string][]int{}}
}

// Tokenize lowercases and splits on non-alphanumeric runes; it is exported
// so tests and rankers agree with the indexer.
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// Add indexes one document and returns its id. Field values are indexed
// alongside the text.
func (ix *Index) Add(ts time.Time, fields map[string]string, text string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := len(ix.docs)
	var fcopy map[string]string
	if len(fields) > 0 {
		fcopy = make(map[string]string, len(fields))
		for k, v := range fields {
			fcopy[k] = v
		}
	}
	ix.docs = append(ix.docs, Doc{ID: id, Timestamp: ts, Fields: fcopy, Text: text})
	ix.bytes += int64(len(text))
	seen := map[string]bool{}
	index := func(s string) {
		for _, term := range Tokenize(s) {
			if seen[term] {
				continue
			}
			seen[term] = true
			ix.postings[term] = append(ix.postings[term], id)
		}
	}
	index(text)
	for _, v := range fields {
		index(v)
	}
	return id
}

// Query is a search request: all Terms must match (AND), Filters must
// equal document fields exactly, and the time range bounds Timestamp
// (zero values are open).
type Query struct {
	Terms   []string
	Filters map[string]string
	From    time.Time
	To      time.Time
	Limit   int
}

// Search runs the query, returning matching documents in ascending
// timestamp order.
func (ix *Index) Search(q Query) []Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if q.Limit <= 0 {
		q.Limit = 100
	}
	// Normalise terms through the same tokenizer.
	var terms []string
	for _, t := range q.Terms {
		terms = append(terms, Tokenize(t)...)
	}
	var candidates []int
	if len(terms) == 0 {
		candidates = make([]int, len(ix.docs))
		for i := range candidates {
			candidates[i] = i
		}
	} else {
		// Intersect postings, shortest list first.
		lists := make([][]int, 0, len(terms))
		for _, t := range terms {
			l, ok := ix.postings[t]
			if !ok {
				return nil
			}
			lists = append(lists, l)
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		candidates = lists[0]
		for _, l := range lists[1:] {
			candidates = intersect(candidates, l)
			if len(candidates) == 0 {
				return nil
			}
		}
	}
	var out []Doc
	for _, id := range candidates {
		d := ix.docs[id]
		if !q.From.IsZero() && d.Timestamp.Before(q.From) {
			continue
		}
		if !q.To.IsZero() && d.Timestamp.After(q.To) {
			continue
		}
		ok := true
		for k, v := range q.Filters {
			if d.Fields[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	if len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

func intersect(a, b []int) []int {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Stats reports index size.
type Stats struct {
	Docs  int
	Terms int
	Bytes int64
}

// Stats returns a snapshot.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{Docs: len(ix.docs), Terms: len(ix.postings), Bytes: ix.bytes}
}

// DeleteBefore drops documents older than ts, rebuilding postings; it
// returns the number dropped. OMNI's retention applies here as well.
func (ix *Index) DeleteBefore(ts time.Time) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	kept := make([]Doc, 0, len(ix.docs))
	dropped := 0
	for _, d := range ix.docs {
		if d.Timestamp.Before(ts) {
			dropped++
			ix.bytes -= int64(len(d.Text))
			continue
		}
		kept = append(kept, d)
	}
	if dropped == 0 {
		return 0
	}
	ix.docs = kept
	ix.postings = map[string][]int{}
	for i := range ix.docs {
		ix.docs[i].ID = i
		seen := map[string]bool{}
		index := func(s string) {
			for _, term := range Tokenize(s) {
				if !seen[term] {
					seen[term] = true
					ix.postings[term] = append(ix.postings[term], i)
				}
			}
		}
		index(ix.docs[i].Text)
		for _, v := range ix.docs[i].Fields {
			index(v)
		}
	}
	return dropped
}

// Handler exposes the ES-flavoured REST API:
//
//	POST /events/_doc       {"timestamp": RFC3339, "fields": {...}, "text": "..."}
//	GET  /events/_search?q=term+term&field.k=v&from=RFC3339&to=RFC3339&size=N
//	GET  /events/_stats
func (ix *Index) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/events/_doc", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Timestamp string            `json:"timestamp"`
			Fields    map[string]string `json:"fields"`
			Text      string            `json:"text"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ts := time.Now()
		if req.Timestamp != "" {
			var err error
			if ts, err = time.Parse(time.RFC3339, req.Timestamp); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		id := ix.Add(ts, req.Fields, req.Text)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{"_id": id, "result": "created"})
	})
	mux.HandleFunc("/events/_search", func(w http.ResponseWriter, r *http.Request) {
		q := Query{Filters: map[string]string{}}
		for k, vs := range r.URL.Query() {
			v := vs[0]
			switch {
			case k == "q":
				q.Terms = strings.Fields(v)
			case k == "size":
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					http.Error(w, "bad size", http.StatusBadRequest)
					return
				}
				q.Limit = n
			case k == "from" || k == "to":
				ts, err := time.Parse(time.RFC3339, v)
				if err != nil {
					http.Error(w, fmt.Sprintf("bad %s", k), http.StatusBadRequest)
					return
				}
				if k == "from" {
					q.From = ts
				} else {
					q.To = ts
				}
			case strings.HasPrefix(k, "field."):
				q.Filters[strings.TrimPrefix(k, "field.")] = v
			}
		}
		hits := ix.Search(q)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"hits": map[string]interface{}{"total": len(hits), "hits": hits},
		})
	})
	mux.HandleFunc("/events/_stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ix.Stats())
	})
	return mux
}
