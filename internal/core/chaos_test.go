package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"shastamon/internal/chaos"
	"shastamon/internal/hms"
	"shastamon/internal/kafka"
	"shastamon/internal/resilience"
	"shastamon/internal/ruler"
)

// queryLabeled runs an instant PromQL query through the warehouse and
// returns the value of the sample carrying label=value.
func queryLabeled(t *testing.T, p *Pipeline, q string, ms int64, label, value string) (float64, bool) {
	t.Helper()
	vec, err := p.Warehouse.QueryMetrics(q, ms)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	for _, s := range vec {
		if s.Labels.Get(label) == value {
			return s.V, true
		}
	}
	return 0, false
}

// The chaos acceptance test: faults at every probe point of the pipeline —
// kafka produces, the telemetry API transport, warehouse ingestion, and
// both notifier transports — while a cabinet leak fires. The contract:
// zero pipeline exits, and once faults clear, exactly one ServiceNow
// incident and one Slack message for the leak, with the breaker and
// stage-error metrics queryable through the warehouse.
func TestChaosLeakDeliveredThroughFaults(t *testing.T) {
	inj := chaos.New(7)
	p := newPipeline(t, Options{LogRules: []ruler.Rule{leakRule}, Chaos: inj})
	// Tighten the notifier retry policies so real-time backoff sleeps don't
	// slow the simulated run; attempt counts keep the same shape.
	fast := resilience.Policy{MaxAttempts: 2, Initial: time.Millisecond, Max: time.Millisecond}
	p.snNotifier.SetRetryPolicy(fast)
	p.slackNotifier.SetRetryPolicy(resilience.Policy{MaxAttempts: 3, Initial: time.Millisecond, Max: time.Millisecond})

	t0 := time.Date(2022, 3, 3, 1, 45, 0, 0, time.UTC)
	mustTick(t, p, t0) // clean baseline

	// Burst 1: three consecutive kafka produce failures. The collector's
	// retry policy (4 attempts) absorbs them inside one produce call, so
	// the tick must stay clean.
	inj.Set("kafka.produce", chaos.Fault{Times: 3})
	mustTick(t, p, t0.Add(5*time.Second))
	if got := inj.Fired("kafka.produce"); got != 3 {
		t.Fatalf("kafka.produce fired %d, want 3", got)
	}

	// Burst 2: four 503s from the telemetry API. The client retries three
	// times per call, so the events drain fails once (a stage error, not a
	// pipeline exit) and the next drain self-heals mid-retry.
	inj.Set("telemetry.http", chaos.Fault{Times: 4, HTTPStatus: 503})
	err := p.Tick(t0.Add(10 * time.Second))
	if err == nil || !strings.Contains(err.Error(), "core: forward") {
		t.Fatalf("tick error = %v, want a forward stage error", err)
	}

	// Burst 3: two warehouse ingest failures degrade the sensor/LDMS
	// drains. Events were not in flight, so nothing alert-relevant is lost.
	inj.Set("warehouse.ingest", chaos.Fault{Times: 2})
	if err := p.Tick(t0.Add(15 * time.Second)); err == nil {
		t.Fatal("warehouse outage should surface as a stage error")
	}

	// The leak fires while the faults above have self-healed; its evidence
	// flows to Loki and the rule goes pending, then firing.
	leakTime := t0.Add(2 * time.Minute)
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, leakTime)
	mustTick(t, p, leakTime.Add(61*time.Second)) // for: 1m satisfied; alert to AM

	// Now the notification path degrades: Slack flakes twice (absorbed by
	// the notifier's in-call retries) and ServiceNow goes hard down until
	// T1+40s. The Alertmanager retry queue plus the SN breaker own recovery.
	inj.Set("slack.http", chaos.Fault{Times: 2})
	inj.Set("servicenow.http", chaos.Fault{ErrProb: 1})
	t1 := leakTime.Add(62 * time.Second)
	for off := 0; off <= 90; off += 5 {
		if off == 40 {
			inj.Clear("servicenow.http")
		}
		mustTick(t, p, t1.Add(time.Duration(off)*time.Second))
	}

	// Exactly one Slack message carries the leak (first dispatch, retried
	// inside Notify), despite the transport fault.
	leakMsgs := 0
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			if att.Title == "PerlmutterCabinetLeak" && strings.Contains(att.Text, "x1203c1b0") {
				leakMsgs++
			}
		}
	}
	if leakMsgs != 1 {
		t.Fatalf("leak slack messages = %d, want exactly 1 (messages: %+v)", leakMsgs, p.Slack.Messages())
	}

	// Exactly one ServiceNow incident once the outage cleared: the failed
	// dispatches were requeued (T1, +5s, +15s trip the breaker, +35s fails
	// fast on the open circuit) and the half-open probe at +75s delivers.
	alerts := p.ServiceNow.Alerts()
	if len(alerts) != 1 || alerts[0].Node != "x1203c1b0" {
		t.Fatalf("sn alerts: %+v", alerts)
	}
	incs := p.ServiceNow.Incidents()
	if len(incs) != 1 {
		t.Fatalf("sn incidents = %d, want exactly 1: %+v", len(incs), incs)
	}
	if n := p.Alertmanager.RetryQueueLen(); n != 0 {
		t.Fatalf("retry queue not drained: %d", n)
	}
	if trips := p.snNotifier.Breaker().Trips(); trips != 1 {
		t.Fatalf("sn breaker trips = %d, want 1", trips)
	}
	errs := p.Alertmanager.NotifyErrors()
	if len(errs) != 4 {
		t.Fatalf("notify errors = %v, want the 4 failed servicenow attempts", errs)
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), "servicenow") {
			t.Fatalf("unexpected notify error: %v", e)
		}
	}

	// The self-monitoring loop recorded the outage: the united breaker
	// gauge reads open (2) mid-outage and closed (0) after recovery, the
	// retry-queue gauge was non-zero, and the stage errors of the early
	// bursts are all queryable through the warehouse via PromQL.
	midMS := t1.Add(20 * time.Second).UnixMilli()
	endMS := t1.Add(90 * time.Second).UnixMilli()
	if v, ok := queryLabeled(t, p, "shastamon_breaker_state", midMS, "dependency", "servicenow"); !ok || v != 2 {
		t.Fatalf("mid-outage servicenow breaker gauge = %v ok=%v, want 2", v, ok)
	}
	if v, ok := queryLabeled(t, p, "shastamon_breaker_state", endMS, "dependency", "servicenow"); !ok || v != 0 {
		t.Fatalf("post-recovery servicenow breaker gauge = %v ok=%v, want 0", v, ok)
	}
	if v, ok := queryLabeled(t, p, "shastamon_alertmanager_retry_queue", midMS, "job", "shastamon"); !ok || v < 1 {
		t.Fatalf("mid-outage retry queue gauge = %v ok=%v, want >=1", v, ok)
	}
	if v, ok := queryLabeled(t, p, "shastamon_stage_errors_total", endMS, "stage", "forward"); !ok || v < 2 {
		t.Fatalf("forward stage errors = %v ok=%v, want >=2", v, ok)
	}
	sent, ok := queryLabeled(t, p, `shastamon_alertmanager_notifications_total{outcome="sent"}`, endMS, "receiver", "servicenow")
	if !ok || sent != 1 {
		t.Fatalf("servicenow sent notifications = %v ok=%v, want 1", sent, ok)
	}
}

// A poison pill — an unparseable payload on the Redfish events topic — is
// quarantined to the topic's dead-letter queue with its error reason
// instead of wedging the forwarder, and can be inspected and replayed.
func TestChaosPoisonPillQuarantineAndReplay(t *testing.T) {
	p := newPipeline(t, Options{})
	t0 := time.Date(2022, 3, 3, 6, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)

	if _, _, err := p.Broker.Produce(hms.TopicEvents, []byte("x9999c0"), []byte("{not json"), t0); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, t0.Add(5*time.Second)) // must not error: the pill is quarantined

	msgs, err := p.DLQRecords(hms.TopicEvents)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("dlq records: %+v", msgs)
	}
	m := msgs[0]
	if string(m.Value) != "{not json" || string(m.Key) != "x9999c0" {
		t.Fatalf("quarantined payload mangled: key=%q value=%q", m.Key, m.Value)
	}
	if m.Headers[kafka.HeaderDLQSource] != hms.TopicEvents {
		t.Fatalf("dlq source header: %q", m.Headers[kafka.HeaderDLQSource])
	}
	if !strings.Contains(m.Headers[kafka.HeaderDLQReason], "event payload") {
		t.Fatalf("dlq reason: %q", m.Headers[kafka.HeaderDLQReason])
	}
	if out := kafka.FormatDLQ(msgs); !strings.Contains(out, "event payload") || !strings.Contains(out, hms.TopicEvents) {
		t.Fatalf("FormatDLQ: %q", out)
	}

	// The quarantine counter reaches the warehouse via the self-scrape.
	mustTick(t, p, t0.Add(10*time.Second))
	ms := t0.Add(10 * time.Second).UnixMilli()
	if v, ok := queryLabeled(t, p, "shastamon_dlq_records_total", ms, "topic", hms.TopicEvents); !ok || v != 1 {
		t.Fatalf("dlq metric = %v ok=%v, want 1", v, ok)
	}

	// Replay pushes the record back onto the source topic; still malformed,
	// it is re-quarantined on the next tick rather than looping forever.
	n, err := p.ReplayDLQ(hms.TopicEvents)
	if err != nil || n != 1 {
		t.Fatalf("replay: %d %v", n, err)
	}
	mustTick(t, p, t0.Add(15*time.Second))
	msgs, err = p.DLQRecords(hms.TopicEvents)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("after replay: %d records, err %v", len(msgs), err)
	}
	// Replay progress is tracked: a second replay only re-produces the
	// record quarantined since the first.
	if n, err = p.ReplayDLQ(hms.TopicEvents); err != nil || n != 1 {
		t.Fatalf("second replay: %d %v", n, err)
	}
}

// Run must outlive persistent tick failures: with the warehouse hard down,
// every tick errors, the loop backs off, and cancellation is still the
// only way out — the pipeline process never exits on its own.
func TestChaosRunSurvivesPersistentTickErrors(t *testing.T) {
	inj := chaos.New(11)
	inj.Set("warehouse.ingest", chaos.Fault{ErrProb: 1})
	p := newPipeline(t, Options{Chaos: inj})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx, 2*time.Millisecond) }()
	time.Sleep(60 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}

	failed := 0.0
	for _, f := range p.Gather() {
		if f.Name == "shastamon_core_tick_failures_total" {
			for _, m := range f.Metrics {
				failed += m.Value
			}
		}
	}
	if failed < 1 {
		t.Fatalf("no failed ticks recorded; the fault never fired (failures=%v)", failed)
	}
}

// Close is idempotent and safe under concurrent callers.
func TestChaosDoubleCloseIdempotent(t *testing.T) {
	p := newPipeline(t, Options{})
	mustTick(t, p, time.Date(2022, 3, 3, 7, 0, 0, 0, time.UTC))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	p.Close() // and again, sequentially (t.Cleanup adds a fourth)
}
