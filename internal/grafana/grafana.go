// Package grafana implements the visualization stage of the paper's single
// pane of glass: dashboards whose panels run LogQL (against Loki) or
// PromQL (against the TSDB) queries and render as text — a log table like
// Fig. 4, or a time-series step chart like Fig. 5 — suitable for
// terminals, tests, and experiment artifacts.
package grafana

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"shastamon/internal/logql"
	"shastamon/internal/promql"
)

// Source selects a panel's datasource and query language.
type Source int

// Panel datasources.
const (
	SourceLokiLogs   Source = iota // LogQL log query: rendered as a table
	SourceLokiMetric               // LogQL metric query: rendered as a chart
	SourceMetrics                  // PromQL query: rendered as a chart
	// SourceSelfStat panels render computed self-monitoring statistics
	// (histogram quantiles, cache hit ratios, slowlog tables) the embedded
	// PromQL subset cannot express. Query is the stat key resolved by the
	// renderer's SetSelfStat closure; GrafanaExpr carries the real-Grafana
	// expression (histogram_quantile, vector division) for JSON export.
	SourceSelfStat
)

// Panel is one dashboard panel.
type Panel struct {
	Title  string
	Query  string
	Source Source
	// Width and Height size the chart plot area (default 72x12); MaxRows
	// bounds log tables (default 20).
	Width   int
	Height  int
	MaxRows int
	// GrafanaExpr, when set, overrides Query as the exported target
	// expression — used by SourceSelfStat panels whose terminal rendering
	// is computed but whose Grafana form is a real PromQL expression.
	GrafanaExpr string
	// GrafanaType overrides the exported panel type ("stat", "table",
	// "timeseries"); empty picks the source default.
	GrafanaType string
}

// Dashboard is a titled list of panels.
type Dashboard struct {
	Title  string
	Panels []Panel
}

// Renderer executes panel queries.
type Renderer struct {
	logs     *logql.Engine
	metrics  *promql.Engine
	selfStat func(key string) (string, error)
}

// NewRenderer builds a renderer; either engine may be nil if no panel
// uses it.
func NewRenderer(logs *logql.Engine, metrics *promql.Engine) *Renderer {
	return &Renderer{logs: logs, metrics: metrics}
}

// SetSelfStat installs the resolver SourceSelfStat panels render through:
// it receives the panel's Query as a stat key and returns pre-formatted
// body text. The pipeline provides one computing quantiles, ratios and
// slowlog tables from its own registries.
func (r *Renderer) SetSelfStat(fn func(key string) (string, error)) { r.selfStat = fn }

// RenderDashboard renders every panel over [start, end] at the step.
func (r *Renderer) RenderDashboard(d Dashboard, start, end time.Time, step time.Duration) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", d.Title)
	for _, p := range d.Panels {
		out, err := r.RenderPanel(p, start, end, step)
		if err != nil {
			return "", fmt.Errorf("grafana: panel %q: %w", p.Title, err)
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// RenderPanel renders one panel.
func (r *Renderer) RenderPanel(p Panel, start, end time.Time, step time.Duration) (string, error) {
	switch p.Source {
	case SourceLokiLogs:
		if r.logs == nil {
			return "", fmt.Errorf("no loki engine configured")
		}
		streams, err := r.logs.QueryLogs(p.Query, start.UnixNano(), end.UnixNano())
		if err != nil {
			return "", err
		}
		return renderLogTable(p, streams), nil
	case SourceLokiMetric:
		if r.logs == nil {
			return "", fmt.Errorf("no loki engine configured")
		}
		m, err := r.logs.QueryRange(p.Query, start.UnixNano(), end.UnixNano(), step)
		if err != nil {
			return "", err
		}
		series := make([]chartSeries, 0, len(m))
		for _, s := range m {
			cs := chartSeries{label: s.Labels.String()}
			for _, pt := range s.Points {
				cs.points = append(cs.points, chartPoint{t: pt.T / 1e6, v: pt.V}) // ns -> ms
			}
			series = append(series, cs)
		}
		return renderChart(p, series, start, end), nil
	case SourceMetrics:
		if r.metrics == nil {
			return "", fmt.Errorf("no metrics engine configured")
		}
		m, err := r.metrics.QueryRange(p.Query, start.UnixMilli(), end.UnixMilli(), step)
		if err != nil {
			return "", err
		}
		series := make([]chartSeries, 0, len(m))
		for _, s := range m {
			cs := chartSeries{label: s.Labels.String()}
			for _, pt := range s.Points {
				cs.points = append(cs.points, chartPoint{t: pt.T, v: pt.V})
			}
			series = append(series, cs)
		}
		return renderChart(p, series, start, end), nil
	case SourceSelfStat:
		if r.selfStat == nil {
			return "", fmt.Errorf("no self-stat source configured")
		}
		body, err := r.selfStat(p.Query)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "-- %s --\n", p.Title)
		b.WriteString(body)
		if !strings.HasSuffix(body, "\n") {
			b.WriteByte('\n')
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("unknown source %d", p.Source)
}

func renderLogTable(p Panel, streams []logql.ResultStream) string {
	maxRows := p.MaxRows
	if maxRows <= 0 {
		maxRows = 20
	}
	type row struct {
		ts     int64
		labels string
		line   string
	}
	var rows []row
	for _, s := range streams {
		for _, e := range s.Entries {
			rows = append(rows, row{ts: e.Timestamp, labels: s.Labels.String(), line: e.Line})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ts < rows[j].ts })
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s (%d entries) --\n", p.Title, len(rows))
	truncated := false
	if len(rows) > maxRows {
		rows = rows[len(rows)-maxRows:]
		truncated = true
	}
	for _, r := range rows {
		ts := time.Unix(0, r.ts).UTC().Format("2006-01-02 15:04:05")
		fmt.Fprintf(&b, "%s  %s  %s\n", ts, r.labels, r.line)
	}
	if truncated {
		b.WriteString("... (older entries truncated)\n")
	}
	return b.String()
}

type chartPoint struct {
	t int64 // ms
	v float64
}

type chartSeries struct {
	label  string
	points []chartPoint
}

var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// renderChart draws a step chart with a y-axis, one glyph per series.
func renderChart(p Panel, series []chartSeries, start, end time.Time) string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", p.Title)
	if len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, pt := range s.points {
			minV = math.Min(minV, pt.v)
			maxV = math.Max(maxV, pt.v)
		}
	}
	if minV > 0 {
		minV = 0 // anchor at zero like Grafana's default
	}
	if maxV <= minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	t0, t1 := start.UnixMilli(), end.UnixMilli()
	if t1 <= t0 {
		t1 = t0 + 1
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, pt := range s.points {
			x := int(float64(pt.t-t0) / float64(t1-t0) * float64(width-1))
			y := int(float64(pt.v-minV) / float64(maxV-minV) * float64(height-1))
			if x < 0 || x >= width {
				continue
			}
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			grid[row][x] = glyph
		}
	}
	for i, row := range grid {
		yVal := maxV - (maxV-minV)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", width-len(end.UTC().Format("15:04:05")), start.UTC().Format("15:04:05"), end.UTC().Format("15:04:05"))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.label)
	}
	return b.String()
}

// CSV renders a metric query result as CSV rows (timestamp,label,value),
// the export format operators paste into reports.
func (r *Renderer) CSV(p Panel, start, end time.Time, step time.Duration) (string, error) {
	var b strings.Builder
	b.WriteString("timestamp,series,value\n")
	write := func(ts int64, label string, v float64) {
		fmt.Fprintf(&b, "%s,%q,%g\n", time.UnixMilli(ts).UTC().Format(time.RFC3339), label, v)
	}
	switch p.Source {
	case SourceLokiMetric:
		m, err := r.logs.QueryRange(p.Query, start.UnixNano(), end.UnixNano(), step)
		if err != nil {
			return "", err
		}
		for _, s := range m {
			for _, pt := range s.Points {
				write(pt.T/1e6, s.Labels.String(), pt.V)
			}
		}
	case SourceMetrics:
		m, err := r.metrics.QueryRange(p.Query, start.UnixMilli(), end.UnixMilli(), step)
		if err != nil {
			return "", err
		}
		for _, s := range m {
			for _, pt := range s.Points {
				write(pt.T, s.Labels.String(), pt.V)
			}
		}
	default:
		return "", fmt.Errorf("grafana: CSV export is for metric panels")
	}
	return b.String(), nil
}
