package chaos

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var i *Injector
	if err := i.Hit("anything"); err != nil {
		t.Fatal(err)
	}
}

func TestUnarmedPointPasses(t *testing.T) {
	i := New(1)
	if err := i.Hit("kafka.produce"); err != nil {
		t.Fatal(err)
	}
}

func TestTimesBudgetSelfHeals(t *testing.T) {
	i := New(1)
	i.Set("p", Fault{Times: 3})
	for k := 0; k < 3; k++ {
		if err := i.Hit("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v", k, err)
		}
	}
	// Budget spent: the fault has healed.
	for k := 0; k < 5; k++ {
		if err := i.Hit("p"); err != nil {
			t.Fatalf("healed point fired: %v", err)
		}
	}
	if i.Fired("p") != 3 {
		t.Fatalf("fired = %d", i.Fired("p"))
	}
}

func TestErrProbRoughlyHolds(t *testing.T) {
	i := New(42)
	i.Set("p", Fault{ErrProb: 0.5})
	fails := 0
	for k := 0; k < 1000; k++ {
		if i.Hit("p") != nil {
			fails++
		}
	}
	if fails < 400 || fails > 600 {
		t.Fatalf("50%% fault fired %d/1000", fails)
	}
}

func TestClearDisarms(t *testing.T) {
	i := New(1)
	i.Set("p", Fault{Times: 100})
	if i.Hit("p") == nil {
		t.Fatal("armed point passed")
	}
	i.Clear("p")
	if err := i.Hit("p"); err != nil {
		t.Fatal(err)
	}
	i.Set("p", Fault{Times: 1})
	i.Set("q", Fault{Times: 1})
	i.ClearAll()
	if i.Hit("p") != nil || i.Hit("q") != nil {
		t.Fatal("ClearAll left faults armed")
	}
}

func TestLatencyProbe(t *testing.T) {
	i := New(1)
	i.Set("p", Fault{Latency: 20 * time.Millisecond})
	t0 := time.Now()
	if err := i.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("latency probe slept only %v", d)
	}
}

func TestTransportStatusBurst(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}))
	defer srv.Close()
	i := New(1)
	i.Set("http", Fault{Times: 2, HTTPStatus: 503})
	c := i.Client("http")
	for k := 0; k < 2; k++ {
		resp, err := c.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("burst request %d: status %d", k, resp.StatusCode)
		}
	}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healed transport: status %d", resp.StatusCode)
	}
}

func TestTransportConnectionError(t *testing.T) {
	i := New(1)
	i.Set("http", Fault{Times: 1})
	c := i.Client("http")
	if _, err := c.Get("http://127.0.0.1:1/none"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected transport error, got %v", err)
	}
}

func TestHookForAnnotates(t *testing.T) {
	i := New(1)
	i.Set("kafka.produce", Fault{Times: 1})
	hook := i.HookFor("kafka.produce")
	err := hook("cray-dmtf-resource-event")
	if !errors.Is(err, ErrInjected) {
		t.Fatal(err)
	}
}

func TestDropProb(t *testing.T) {
	i := New(3)
	i.Set("p", Fault{DropProb: 1, Times: 2})
	if err := i.Hit("p"); !errors.Is(err, ErrDropped) {
		t.Fatal(err)
	}
}

// TestAfterWindow places a deterministic failure window mid-stream: hits
// 1-3 pass, hits 4-5 fail, everything after self-heals.
func TestAfterWindow(t *testing.T) {
	i := New(1)
	i.Set("p", Fault{After: 3, Times: 2})
	var got []bool
	for k := 0; k < 7; k++ {
		got = append(got, i.Hit("p") != nil)
	}
	want := []bool{false, false, false, true, true, false, false}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", k+1, got[k], want[k], got)
		}
	}
}

func TestErrOverride(t *testing.T) {
	i := New(1)
	i.Set("disk.write", Fault{Times: 1, Err: syscall.ENOSPC})
	err := i.Hit("disk.write")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("ENOSPC fault lost ErrInjected: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC fault lost the concrete errno: %v", err)
	}
}

func TestWriterFaults(t *testing.T) {
	i := New(1)
	i.Set("disk.write", Fault{After: 1, Times: 1})
	var buf bytes.Buffer
	w := i.Writer("disk.write", &buf)
	if _, err := w.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if n, err := w.Write([]byte("second")); err == nil || n != 0 {
		t.Fatalf("armed write: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("third")); err != nil {
		t.Fatalf("healed write: %v", err)
	}
	if buf.String() != "firstthird" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

// TestWriterShort proves the torn-write mode: half the buffer lands, then
// the injected error surfaces — the shape of a crash mid-record.
func TestWriterShort(t *testing.T) {
	i := New(1)
	i.Set("disk.write", Fault{Times: 1, Short: true})
	var buf bytes.Buffer
	w := i.Writer("disk.write", &buf)
	p := []byte("0123456789")
	n, err := w.Write(p)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v", err)
	}
	if n != len(p)/2 || buf.Len() != len(p)/2 {
		t.Fatalf("short write landed %d bytes (buf %d), want %d", n, buf.Len(), len(p)/2)
	}
}

func TestWriterWrapperNilInjector(t *testing.T) {
	var i *Injector
	if i.WriterWrapper("disk.write") != nil {
		t.Fatal("nil injector returned a wrapper")
	}
	var buf bytes.Buffer
	if w := i.Writer("disk.write", &buf); w != &buf {
		t.Fatal("nil injector wrapped the writer")
	}
}
