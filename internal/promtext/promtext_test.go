package promtext

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"shastamon/internal/labels"
)

func TestWriteParseRoundTrip(t *testing.T) {
	in := []Family{
		{
			Name: "node_cpu_seconds_total", Help: "CPU seconds.", Type: "counter",
			Metrics: []Metric{
				{Name: "node_cpu_seconds_total", Labels: labels.FromStrings("cpu", "0", "mode", "idle"), Value: 123.5},
				{Name: "node_cpu_seconds_total", Labels: labels.FromStrings("cpu", "1", "mode", "idle"), Value: 99},
			},
		},
		{
			Name: "up", Type: "gauge",
			Metrics: []Metric{{Name: "up", Value: 1, Timestamp: 1646272077000}},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("families: %d", len(out))
	}
	if out[0].Help != "CPU seconds." || out[0].Type != "counter" {
		t.Fatalf("meta: %+v", out[0])
	}
	if len(out[0].Metrics) != 2 || out[0].Metrics[0].Labels.Get("cpu") != "0" {
		t.Fatalf("metrics: %+v", out[0].Metrics)
	}
	if out[1].Metrics[0].Timestamp != 1646272077000 {
		t.Fatalf("ts: %+v", out[1].Metrics[0])
	}
}

func TestParseBareSample(t *testing.T) {
	fams, err := Parse(strings.NewReader("metric_without_meta 42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Metrics[0].Value != 42 {
		t.Fatalf("%+v", fams)
	}
}

func TestParseSpecialValues(t *testing.T) {
	fams, err := Parse(strings.NewReader("a +Inf\nb -Inf\nc NaN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(fams[0].Metrics[0].Value, 1) || !math.IsInf(fams[1].Metrics[0].Value, -1) || !math.IsNaN(fams[2].Metrics[0].Value) {
		t.Fatalf("%+v", fams)
	}
}

func TestParseEscapedLabelValue(t *testing.T) {
	fams, err := Parse(strings.NewReader(`m{msg="line\nbreak \"q\""} 1` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if fams[0].Metrics[0].Labels.Get("msg") != "line\nbreak \"q\"" {
		t.Fatalf("%q", fams[0].Metrics[0].Labels.Get("msg"))
	}
}

// TestHistogramRoundTrip writes a histogram family the way the obs layer
// renders one — _bucket rows (including le="+Inf"), _sum and _count under
// a single TYPE histogram family — and asserts Parse recovers every sample
// exactly: names, label sets (with escaping) and values.
func TestHistogramRoundTrip(t *testing.T) {
	const base = "shastamon_query_duration_seconds"
	bucket := func(le string, engine string, v float64) Metric {
		return Metric{
			Name:   base + "_bucket",
			Labels: labels.FromStrings("engine", engine, "le", le),
			Value:  v,
		}
	}
	in := []Family{{
		Name: base, Help: "Query latency.", Type: "histogram",
		Metrics: []Metric{
			bucket("0.005", `logql "fast"`, 3),
			bucket("0.25", `logql "fast"`, 7),
			bucket("+Inf", `logql "fast"`, 9),
			bucket("0.005", "promql\nv2\\beta", 1),
			bucket("+Inf", "promql\nv2\\beta", 4),
			{Name: base + "_sum", Labels: labels.FromStrings("engine", `logql "fast"`), Value: 1.75},
			{Name: base + "_count", Labels: labels.FromStrings("engine", `logql "fast"`), Value: 9},
			{Name: base + "_sum", Labels: labels.FromStrings("engine", "promql\nv2\\beta"), Value: 0.375},
			{Name: base + "_count", Labels: labels.FromStrings("engine", "promql\nv2\\beta"), Value: 4},
		},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Parse groups samples by their own name, so the one written family
	// comes back as _bucket/_sum/_count families (and regrouping reorders
	// the flattened list); compare as a multiset keyed on name+labels.
	key := func(m Metric) string { return m.Name + m.Labels.String() }
	got := map[string]float64{}
	for _, m := range Samples(out) {
		got[key(m)] = m.Value
	}
	want := in[0].Metrics
	if len(got) != len(want) {
		t.Fatalf("samples: got %d, want %d", len(got), len(want))
	}
	for _, w := range want {
		v, ok := got[key(w)]
		if !ok || v != w.Value {
			t.Fatalf("sample %+v: got %v (present=%v)", w, v, ok)
		}
	}
	// le="+Inf" must survive as the literal string, not a parsed float.
	for _, m := range Samples(out) {
		if le := m.Labels.Get("le"); le != "" && le != "+Inf" && le != "0.005" && le != "0.25" {
			t.Fatalf("unexpected le label %q", le)
		}
	}
	if _, ok := got[key(want[2])]; !ok {
		t.Fatal("le=\"+Inf\" bucket did not round-trip")
	}
	// The histogram TYPE line is keyed on the base name.
	var buf2 bytes.Buffer
	_ = Write(&buf2, in)
	if !strings.Contains(buf2.String(), "# TYPE "+base+" histogram") {
		t.Fatalf("missing TYPE line:\n%s", buf2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1leading_digit 1\n",
		"m{unterminated=\"x\" 1\n",
		"m{a=b} 1\n",
		"m notanumber\n",
		"m 1 notatimestamp\n",
		"m\n",
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestIgnoresUnknownComments(t *testing.T) {
	fams, err := Parse(strings.NewReader("# EOF\n# random comment\nm 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("%+v", fams)
	}
}

func TestSamplesFlatten(t *testing.T) {
	fams := []Family{
		{Name: "a", Metrics: []Metric{{Name: "a", Value: 1}}},
		{Name: "b", Metrics: []Metric{{Name: "b", Value: 2}, {Name: "b", Value: 3}}},
	}
	if got := Samples(fams); len(got) != 3 {
		t.Fatalf("%+v", got)
	}
}

// Property: any label set of safe strings round-trips through the text
// format.
func TestPropertyLabelRoundTrip(t *testing.T) {
	f := func(v1, v2 string) bool {
		ls := labels.FromStrings("alpha", v1, "beta", v2)
		in := []Family{{Name: "m", Metrics: []Metric{{Name: "m", Labels: ls, Value: 1}}}}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Parse(&buf)
		if err != nil {
			return false
		}
		return len(out) == 1 && out[0].Metrics[0].Labels.Equal(ls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	var buf bytes.Buffer
	fams := make([]Family, 0, 10)
	for i := 0; i < 10; i++ {
		f := Family{Name: "node_metric", Type: "gauge"}
		for j := 0; j < 100; j++ {
			f.Metrics = append(f.Metrics, Metric{
				Name:   "node_metric",
				Labels: labels.FromStrings("cpu", "0", "mode", "idle"),
				Value:  float64(j),
			})
		}
		fams = append(fams, f)
	}
	_ = Write(&buf, fams)
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	in := []Family{{
		Name: "m", Help: "line one\nline two \\ backslash", Type: "gauge",
		Metrics: []Metric{{Name: "m", Value: 1}},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# HELP m line one\nline two \\ backslash`) {
		t.Fatalf("%s", buf.String())
	}
	// Still parseable.
	if _, err := Parse(&buf); err != nil {
		t.Fatal(err)
	}
}
