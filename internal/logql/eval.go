package logql

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/parallel"
	"shastamon/internal/stats"
)

// Querier is the storage interface the engine reads from; *loki.Store
// implements it. The context carries cancellation and the per-query
// stats.Context down into the chunk scan.
type Querier interface {
	SelectContext(ctx context.Context, sel []*labels.Matcher, mint, maxt int64) ([]loki.SelectedStream, error)
}

// Sample is one metric query result value.
type Sample struct {
	Labels labels.Labels
	T      int64 // Unix nanoseconds
	V      float64
}

// Vector is an instant query result.
type Vector []Sample

// Point is one (timestamp, value) of a range query series.
type Point struct {
	T int64
	V float64
}

// Series is a labelled sequence of points.
type Series struct {
	Labels labels.Labels
	Points []Point
}

// Matrix is a range query result.
type Matrix []Series

// ResultStream is a log query result: output labels (stream labels plus
// any parser-extracted ones) and matching entries.
type ResultStream struct {
	Labels  labels.Labels
	Entries []loki.Entry
}

// Engine evaluates parsed LogQL expressions against a Querier. Stream
// pipelines fan out over a bounded worker pool (GOMAXPROCS workers by
// default) and result groups are keyed by label fingerprint, so neither
// the per-entry key rendering nor single-goroutine evaluation caps the
// paper's query figures.
type Engine struct {
	q        Querier
	workers  int
	inFlight atomic.Int64
	tracker  *stats.Tracker
	frontend *frontend.Frontend
}

// NewEngine returns an engine reading from q with GOMAXPROCS workers.
func NewEngine(q Querier) *Engine { return &Engine{q: q, workers: parallel.Workers(0)} }

// SetParallelism bounds the stream fan-out worker pool; n <= 1 evaluates
// sequentially. Call during setup, not concurrently with queries.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// QueryParallelism reports the number of in-flight pipeline workers; the
// warehouse exposes it as a gauge.
func (e *Engine) QueryParallelism() int64 { return e.inFlight.Load() }

// SetTracker attaches the active-query tracker the HTTP handler registers
// queries with. Call during setup, not concurrently with queries.
func (e *Engine) SetTracker(t *stats.Tracker) { e.tracker = t }

// Tracker returns the attached active-query tracker, nil when unset.
func (e *Engine) Tracker() *stats.Tracker { return e.tracker }

// checkEvery is how many pipeline entries a worker processes between
// context checks, so kills cancel a query mid-stream promptly.
const checkEvery = 256

// groupSet accumulates result streams keyed by label fingerprint, with
// collision lists, in first-seen order. Keying by fingerprint (computed
// once per label-set transition, not per entry) replaces the old
// per-entry lbls.String() map key, which allocated a rendered string for
// every log line.
type groupSet struct {
	byFP  map[labels.Fingerprint][]*ResultStream
	order []*ResultStream
}

func (gs *groupSet) get(fp labels.Fingerprint, lbls labels.Labels) *ResultStream {
	if gs.byFP == nil {
		gs.byFP = map[labels.Fingerprint][]*ResultStream{}
	}
	for _, g := range gs.byFP[fp] {
		if g.Labels.Equal(lbls) {
			return g
		}
	}
	g := &ResultStream{Labels: lbls}
	gs.byFP[fp] = append(gs.byFP[fp], g)
	gs.order = append(gs.order, g)
	return g
}

// processLogStream runs the pipeline over one selected stream, grouping
// surviving entries by their post-pipeline label sets. The group lookup
// happens only when the pipeline's output labels change from one entry to
// the next; runs of identical labels (the common case — line filters and
// parsers over one stream emit long runs) reuse the previous group.
func processLogStream(ctx context.Context, stages []Stage, s loki.SelectedStream) []*ResultStream {
	var gs groupSet
	var cur *ResultStream
	var curLbls labels.Labels
	for n, entry := range s.Entries {
		if n%checkEvery == 0 && ctx.Err() != nil {
			return nil
		}
		line, lbls, ok := runPipeline(stages, entry.Line, s.Labels)
		if !ok {
			continue
		}
		if cur == nil || !lbls.Equal(curLbls) {
			curLbls = lbls
			cur = gs.get(lbls.Fingerprint(), lbls)
		}
		cur.Entries = append(cur.Entries, loki.Entry{Timestamp: entry.Timestamp, Line: line})
	}
	return gs.order
}

// SelectLogs runs a log query over [start, end] (ns, inclusive). Entries
// are regrouped by their post-pipeline label sets. Input streams are
// processed in parallel and merged in stream order, so results are
// identical to sequential evaluation.
func (e *Engine) SelectLogs(expr *LogExpr, start, end int64) ([]ResultStream, error) {
	return e.SelectLogsContext(context.Background(), expr, start, end)
}

// SelectLogsContext is SelectLogs with cancellation and per-query
// statistics carried by ctx.
func (e *Engine) SelectLogsContext(ctx context.Context, expr *LogExpr, start, end int64) ([]ResultStream, error) {
	sc := stats.FromContext(ctx)
	sc.MarkExec()
	streams, err := e.q.SelectContext(ctx, expr.Selector, start, end)
	if err != nil {
		return nil, err
	}
	pipeStart := time.Now()
	perStream := make([][]*ResultStream, len(streams))
	parallel.Do(len(streams), e.workers, &e.inFlight, func(i int) {
		perStream[i] = processLogStream(ctx, expr.Stages, streams[i])
	})
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	var merged groupSet
	for _, locals := range perStream {
		for _, lg := range locals {
			g := merged.get(lg.Labels.Fingerprint(), lg.Labels)
			g.Entries = append(g.Entries, lg.Entries...)
		}
	}
	out := make([]ResultStream, 0, len(merged.order))
	entries := 0
	for _, g := range merged.order {
		sort.SliceStable(g.Entries, func(i, j int) bool { return g.Entries[i].Timestamp < g.Entries[j].Timestamp })
		entries += len(g.Entries)
		out = append(out, *g)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	sc.AddEntriesReturned(int64(entries))
	sc.AddSpan("logql.pipeline", pipeStart, time.Now(),
		fmt.Sprintf("%d streams -> %d groups", len(streams), len(out)))
	return out, nil
}

// Instant evaluates a metric expression at a single timestamp.
func (e *Engine) Instant(expr Expr, ts int64) (Vector, error) {
	return e.InstantContext(context.Background(), expr, ts)
}

// InstantContext is Instant with cancellation and per-query statistics
// carried by ctx.
func (e *Engine) InstantContext(ctx context.Context, expr Expr, ts int64) (Vector, error) {
	stats.FromContext(ctx).MarkExec()
	switch ex := expr.(type) {
	case *RangeAggExpr:
		return e.evalRangeAgg(ctx, ex, ts)
	case *VectorAggExpr:
		return e.evalVectorAgg(ctx, ex, ts)
	case *CmpExpr:
		inner, err := e.InstantContext(ctx, ex.Inner, ts)
		if err != nil {
			return nil, err
		}
		out := inner[:0]
		for _, s := range inner {
			if ex.Op.apply(s.V, ex.Threshold) {
				out = append(out, s)
			}
		}
		return out, nil
	case *LogExpr:
		return nil, fmt.Errorf("logql: %q is a log query; use SelectLogs", ex)
	default:
		return nil, fmt.Errorf("logql: unsupported expression %T", expr)
	}
}

// Range evaluates a metric expression over [start, end] at the given step,
// producing one series per distinct label set.
func (e *Engine) Range(expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	return e.RangeContext(context.Background(), expr, start, end, step)
}

// RangeContext is Range with cancellation and per-query statistics
// carried by ctx. With a frontend attached (SetFrontend) the range is
// split at interval boundaries, partially served from the results
// cache and fanned across store shards where the expression permits;
// without one it evaluates monolithically as a single split.
func (e *Engine) RangeContext(ctx context.Context, expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	if step <= 0 {
		return nil, fmt.Errorf("logql: step must be positive")
	}
	if me, ok := expr.(MetricExpr); ok && e.frontend != nil {
		return e.rangeViaFrontend(ctx, me, start, end, step)
	}
	sc := stats.FromContext(ctx)
	sc.MarkExec()
	sc.AddSplit()
	return e.rangeDirect(ctx, expr, start, end, step)
}

// rangeDirect is the monolithic range evaluation: one instant
// evaluation per step over the whole window. The frontend calls it per
// split; split results concatenate to exactly this loop's output.
func (e *Engine) rangeDirect(ctx context.Context, expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	seriesByKey := map[string]*Series{}
	var order []string
	for ts := start; ts <= end; ts += int64(step) {
		vec, err := e.InstantContext(ctx, expr, ts)
		if err != nil {
			return nil, err
		}
		for _, s := range vec {
			key := s.Labels.String()
			sr, ok := seriesByKey[key]
			if !ok {
				sr = &Series{Labels: s.Labels}
				seriesByKey[key] = sr
				order = append(order, key)
			}
			sr.Points = append(sr.Points, Point{T: ts, V: s.V})
		}
	}
	sort.Strings(order)
	m := make(Matrix, 0, len(order))
	for _, key := range order {
		m = append(m, *seriesByKey[key])
	}
	return m, nil
}

// rangeAcc accumulates one output group of a range aggregation.
type rangeAcc struct {
	labels labels.Labels
	count  float64
	bytes  float64
	sum    float64
	min    float64
	max    float64
	vals   float64 // count of unwrapped values
}

// rangeAccSet groups rangeAccs by label fingerprint in first-seen order.
type rangeAccSet struct {
	byFP  map[labels.Fingerprint][]*rangeAcc
	order []*rangeAcc
}

func (as *rangeAccSet) get(fp labels.Fingerprint, lbls labels.Labels) *rangeAcc {
	if as.byFP == nil {
		as.byFP = map[labels.Fingerprint][]*rangeAcc{}
	}
	for _, g := range as.byFP[fp] {
		if g.labels.Equal(lbls) {
			return g
		}
	}
	g := &rangeAcc{labels: lbls}
	as.byFP[fp] = append(as.byFP[fp], g)
	as.order = append(as.order, g)
	return g
}

// accumulateRangeStream folds one selected stream into per-group
// accumulators, returning them plus the count of pipeline-surviving
// entries (absent_over_time needs the total even when unwrap fails).
// As in processLogStream, the group key is recomputed only when the
// pipeline's output labels change between consecutive entries.
func accumulateRangeStream(ctx context.Context, ex *RangeAggExpr, s loki.SelectedStream) ([]*rangeAcc, int) {
	var as rangeAccSet
	var g *rangeAcc
	var curLbls labels.Labels
	total := 0
	for n, entry := range s.Entries {
		if n%checkEvery == 0 && ctx.Err() != nil {
			return nil, 0
		}
		line, lbls, ok := runPipeline(ex.Log.Stages, entry.Line, s.Labels)
		if !ok {
			continue
		}
		total++
		var val float64
		hasVal := false
		if ex.Unwrap != "" {
			v, err := strconv.ParseFloat(lbls.Get(ex.Unwrap), 64)
			if err != nil {
				continue // skip entries whose unwrap label is not numeric
			}
			val, hasVal = v, true
		}
		if g == nil || !lbls.Equal(curLbls) {
			curLbls = lbls
			grouped := lbls
			if ex.Unwrap != "" {
				grouped = lbls.Without(ex.Unwrap)
			}
			g = as.get(grouped.Fingerprint(), grouped)
		}
		g.count++
		g.bytes += float64(len(line))
		if hasVal {
			if g.vals == 0 || val < g.min {
				g.min = val
			}
			if g.vals == 0 || val > g.max {
				g.max = val
			}
			g.sum += val
			g.vals++
		}
	}
	return as.order, total
}

// merge folds other into g.
func (g *rangeAcc) merge(other *rangeAcc) {
	g.count += other.count
	g.bytes += other.bytes
	if other.vals > 0 {
		if g.vals == 0 || other.min < g.min {
			g.min = other.min
		}
		if g.vals == 0 || other.max > g.max {
			g.max = other.max
		}
		g.sum += other.sum
		g.vals += other.vals
	}
}

func (e *Engine) evalRangeAgg(ctx context.Context, ex *RangeAggExpr, ts int64) (Vector, error) {
	mint := ts - int64(ex.Interval) + 1
	maxt := ts
	streams, err := e.q.SelectContext(ctx, ex.Log.Selector, mint, maxt)
	if err != nil {
		return nil, err
	}
	accStart := time.Now()
	perStream := make([][]*rangeAcc, len(streams))
	counts := make([]int, len(streams))
	parallel.Do(len(streams), e.workers, &e.inFlight, func(i int) {
		perStream[i], counts[i] = accumulateRangeStream(ctx, ex, streams[i])
	})
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	sc := stats.FromContext(ctx)
	sc.AddSpan("logql.accumulate", accStart, time.Now(),
		fmt.Sprintf("%s over %d streams", ex.Op, len(streams)))
	var merged rangeAccSet
	total := 0
	for i, locals := range perStream {
		total += counts[i]
		for _, lg := range locals {
			merged.get(lg.labels.Fingerprint(), lg.labels).merge(lg)
		}
	}
	if ex.Op == OpAbsentOverTime {
		if total > 0 {
			return nil, nil
		}
		// Absent vector carries the equality matchers as labels, like PromQL.
		b := labels.NewBuilder(nil)
		for _, m := range ex.Log.Selector {
			if m.Type == labels.MatchEqual {
				b.Set(m.Name, m.Value)
			}
		}
		return Vector{{Labels: b.Labels(), T: ts, V: 1}}, nil
	}
	secs := ex.Interval.Seconds()
	groups := merged.order
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].labels.String() < groups[j].labels.String() })
	out := make(Vector, 0, len(groups))
	for _, g := range groups {
		var v float64
		switch ex.Op {
		case OpCountOverTime:
			v = g.count
		case OpRate:
			v = g.count / secs
		case OpBytesOverTime:
			v = g.bytes
		case OpBytesRate:
			v = g.bytes / secs
		case OpSumOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.sum
		case OpAvgOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.sum / g.vals
		case OpMaxOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.max
		case OpMinOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.min
		default:
			return nil, fmt.Errorf("logql: unsupported range op %q", ex.Op)
		}
		out = append(out, Sample{Labels: g.labels, T: ts, V: v})
	}
	return out, nil
}

func (e *Engine) evalVectorAgg(ctx context.Context, ex *VectorAggExpr, ts int64) (Vector, error) {
	inner, err := e.InstantContext(ctx, ex.Inner, ts)
	if err != nil {
		return nil, err
	}
	groupLabels := func(ls labels.Labels) labels.Labels {
		if ex.Without {
			return ls.Without(ex.Grouping...)
		}
		if len(ex.Grouping) == 0 {
			return nil
		}
		return ls.Keep(ex.Grouping...)
	}
	if ex.Op == "topk" || ex.Op == "bottomk" {
		return evalTopK(ex, inner, groupLabels), nil
	}
	type acc struct {
		labels labels.Labels
		sum    float64
		min    float64
		max    float64
		count  float64
	}
	groups := map[string]*acc{}
	var order []string
	for _, s := range inner {
		gl := groupLabels(s.Labels)
		key := gl.String()
		g, ok := groups[key]
		if !ok {
			g = &acc{labels: gl, min: s.V, max: s.V}
			groups[key] = g
			order = append(order, key)
		}
		g.sum += s.V
		g.count++
		if s.V < g.min {
			g.min = s.V
		}
		if s.V > g.max {
			g.max = s.V
		}
	}
	sort.Strings(order)
	out := make(Vector, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		var v float64
		switch ex.Op {
		case "sum":
			v = g.sum
		case "min":
			v = g.min
		case "max":
			v = g.max
		case "avg":
			v = g.sum / g.count
		case "count":
			v = g.count
		default:
			return nil, fmt.Errorf("logql: unsupported aggregation %q", ex.Op)
		}
		out = append(out, Sample{Labels: g.labels, T: ts, V: v})
	}
	return out, nil
}

func evalTopK(ex *VectorAggExpr, inner Vector, groupLabels func(labels.Labels) labels.Labels) Vector {
	// Samples keep their original labels; k applies per group.
	groups := map[string][]Sample{}
	var order []string
	for _, s := range inner {
		key := groupLabels(s.Labels).String()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], s)
	}
	sort.Strings(order)
	var out Vector
	for _, key := range order {
		ss := groups[key]
		sort.SliceStable(ss, func(i, j int) bool {
			if ex.Op == "topk" {
				return ss[i].V > ss[j].V
			}
			return ss[i].V < ss[j].V
		})
		k := ex.Param
		if k > len(ss) {
			k = len(ss)
		}
		out = append(out, ss[:k]...)
	}
	return out
}

// QueryLogs parses and runs a log query.
func (e *Engine) QueryLogs(q string, start, end int64) ([]ResultStream, error) {
	return e.QueryLogsContext(context.Background(), q, start, end)
}

// QueryLogsContext parses and runs a log query under ctx.
func (e *Engine) QueryLogsContext(ctx context.Context, q string, start, end int64) ([]ResultStream, error) {
	expr, err := ParseLogExpr(q)
	if err != nil {
		return nil, err
	}
	return e.SelectLogsContext(ctx, expr, start, end)
}

// QueryInstant parses and runs a metric query at ts.
func (e *Engine) QueryInstant(q string, ts int64) (Vector, error) {
	return e.QueryInstantContext(context.Background(), q, ts)
}

// QueryInstantContext parses and runs a metric query at ts under ctx.
func (e *Engine) QueryInstantContext(ctx context.Context, q string, ts int64) (Vector, error) {
	expr, err := ParseMetricExpr(q)
	if err != nil {
		return nil, err
	}
	vec, err := e.InstantContext(ctx, expr, ts)
	if err != nil {
		return nil, err
	}
	stats.FromContext(ctx).AddEntriesReturned(int64(len(vec)))
	return vec, nil
}

// QueryRange parses and runs a metric query over a range.
func (e *Engine) QueryRange(q string, start, end int64, step time.Duration) (Matrix, error) {
	return e.QueryRangeContext(context.Background(), q, start, end, step)
}

// QueryRangeContext parses and runs a metric query over a range under ctx.
func (e *Engine) QueryRangeContext(ctx context.Context, q string, start, end int64, step time.Duration) (Matrix, error) {
	expr, err := ParseMetricExpr(q)
	if err != nil {
		return nil, err
	}
	m, err := e.RangeContext(ctx, expr, start, end, step)
	if err != nil {
		return nil, err
	}
	points := 0
	for _, s := range m {
		points += len(s.Points)
	}
	stats.FromContext(ctx).AddEntriesReturned(int64(points))
	return m, nil
}
