package core

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/chaos"
	"shastamon/internal/obs"
	"shastamon/internal/resilience"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
)

// cabinetLeakRule is the leak rule under the alert-family name the
// detection-latency acceptance criterion names: the histogram's rule
// label is the alertname.
var cabinetLeakRule = ruler.Rule{
	Name:        "cabinet_leak",
	Expr:        leakRule.Expr,
	For:         leakRule.For,
	Labels:      leakRule.Labels,
	Annotations: leakRule.Annotations,
}

// slackTitles counts Slack attachments by alert title.
func slackTitles(p *Pipeline) map[string]int {
	out := map[string]int{}
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			out[att.Title]++
		}
	}
	return out
}

// TestDetectionLatencyEndToEnd is the issue's acceptance scenario: a leak
// produces exactly one shastamon_detection_latency_seconds{rule="cabinet_leak"}
// observation whose exemplar trace ID resolves to a span waterfall
// covering every stage from the Redfish emit to the Slack delivery.
func TestDetectionLatencyEndToEnd(t *testing.T) {
	p := newPipeline(t, Options{LogRules: []ruler.Rule{cabinetLeakRule}})
	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	mustTick(t, p, leakTime.Add(-time.Minute))
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	// Fire at +61s (for: 1m), deliver at +62s; the extra ticks prove the
	// close-out stays exactly-once across later flushes.
	for _, off := range []time.Duration{0, 61 * time.Second, 62 * time.Second,
		63 * time.Second, 2 * time.Minute} {
		mustTick(t, p, leakTime.Add(off))
	}

	fams := p.Gather()
	if got := obs.Value(fams, "shastamon_detection_latency_seconds_count", "rule", "cabinet_leak"); got != 1 {
		t.Fatalf("detection_latency count = %v, want exactly 1", got)
	}

	// The exemplar rides on the bucket the observation landed in.
	var traceID string
	var exemplarVal float64
	for _, f := range fams {
		if f.Name != "shastamon_detection_latency_seconds" {
			continue
		}
		for _, m := range f.Metrics {
			if m.Exemplar != nil && m.Labels.Get("rule") == "cabinet_leak" {
				traceID = m.Exemplar.Labels.Get("trace_id")
				exemplarVal = m.Exemplar.Value
			}
		}
	}
	if traceID == "" {
		t.Fatal("no exemplar trace_id on the detection-latency buckets")
	}
	if exemplarVal < 61 || exemplarVal > 70 {
		t.Fatalf("exemplar latency = %v s, want ~62s (rule hold + delivery)", exemplarVal)
	}

	// The exemplar's trace covers the full journey, Redfish emit -> Slack.
	tr, ok := p.Tracer.Get(traceID)
	if !ok {
		t.Fatalf("exemplar trace %s not retained", traceID)
	}
	wantStages := []string{
		"origin", "kafka.produce", "telemetry.stream", "core.forward",
		"loki.ingest", "ruler.fire", "alertmanager.notify", "slack.deliver",
	}
	if !tr.HasStages(wantStages...) {
		t.Fatalf("trace %s stages = %v, want all of %v", traceID, tr.StageNames(), wantStages)
	}
	if tr.Attrs["detection_latency_seconds"] == "" {
		t.Fatalf("trace %s missing detection_latency_seconds attr: %v", traceID, tr.Attrs)
	}
	// Timed spans: the rule hold makes ruler.fire start ~61s after origin.
	var fireOffset time.Duration
	for _, s := range tr.Stages {
		if s.Stage == "ruler.fire" {
			fireOffset = s.Time.Sub(tr.Stages[0].Time)
		}
	}
	if fireOffset < 61*time.Second {
		t.Fatalf("ruler.fire offset = %s, want >= 61s", fireOffset)
	}

	// The waterfall view serves the same trace as text.
	rec := httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+traceID+"?format=waterfall", nil))
	if rec.Code != 200 {
		t.Fatalf("waterfall -> %d", rec.Code)
	}
	for _, want := range []string{"slack.deliver", "ruler.fire", "detection_latency_seconds"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("waterfall missing %q:\n%s", want, rec.Body.String())
		}
	}

	// The exposition page renders the exemplar in OpenMetrics style.
	rec = httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `# {trace_id="`+traceID+`"}`) {
		t.Fatal("/metrics does not render the exemplar")
	}

	// And the SLO endpoint reports the rule with one good event (62s is
	// inside the default 90s target).
	rec = httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var rep obs.SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep.Rules {
		if r.Rule == "cabinet_leak" {
			found = true
			if r.Events != 1 || r.Good != 1 || r.BurnRate != 0 {
				t.Fatalf("slo report = %+v, want 1 good event, burn 0", r)
			}
		}
	}
	if !found {
		t.Fatalf("/debug/slo missing cabinet_leak: %+v", rep)
	}
}

// TestSwitchOfflineDetectionLatency: fabric events bypass Kafka, so their
// traces are minted at the fabric monitor; the switch-offline alert still
// closes out an end-to-end latency.
func TestSwitchOfflineDetectionLatency(t *testing.T) {
	p := newPipeline(t, Options{LogRules: []ruler.Rule{switchRuleCopy()}})
	t0 := time.Date(2022, 3, 3, 2, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, t0.Add(time.Minute))
	mustTick(t, p, t0.Add(time.Minute+time.Second))

	fams := p.Gather()
	if got := obs.Value(fams, "shastamon_detection_latency_seconds_count", "rule", "SwitchOffline"); got != 1 {
		t.Fatalf("switch detection_latency count = %v, want 1", got)
	}
	id := p.Tracer.IDByKey("x1002c1r7b0")
	if id == "" {
		t.Fatal("no trace minted for the offline switch")
	}
	tr, _ := p.Tracer.Get(id)
	if !tr.HasStages("origin", "loki.ingest", "ruler.fire", "alertmanager.notify", "slack.deliver") {
		t.Fatalf("switch trace stages = %v", tr.StageNames())
	}
}

func switchRuleCopy() ruler.Rule {
	return ruler.Rule{
		Name:   "SwitchOffline",
		Expr:   `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<sev>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (sev, problem, xname, state) > 0`,
		For:    0,
		Labels: map[string]string{"severity": "critical"},
	}
}

// TestMetaAlertBreakerOpen is the chaos acceptance run: ServiceNow goes
// hard down, its circuit breaker sticks open, and the built-in
// ShastamonBreakerStuckOpen meta-alert fires through the same
// Alertmanager -> Slack path the hardware alerts use.
func TestMetaAlertBreakerOpen(t *testing.T) {
	inj := chaos.New(3)
	p := newPipeline(t, Options{LogRules: []ruler.Rule{leakRule}, MetaAlerts: true, Chaos: inj})
	fast := resilience.Policy{MaxAttempts: 2, Initial: time.Millisecond, Max: time.Millisecond}
	p.snNotifier.SetRetryPolicy(fast)
	p.slackNotifier.SetRetryPolicy(fast)

	// ServiceNow is down for the whole run; Slack stays healthy, so the
	// self-alert has a working path out.
	inj.Set("servicenow.http", chaos.Fault{ErrProb: 1})

	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	mustTick(t, p, leakTime.Add(-time.Minute))
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, leakTime)
	mustTick(t, p, leakTime.Add(61*time.Second))

	// Retry-queue redispatches fail until the SN breaker opens (threshold
	// 3, open 30s on the simulated clock); each tick scrapes
	// shastamon_breaker_state{dependency="servicenow"}=2 into the TSDB and
	// vmalert's for:10s hold turns it into a firing meta-alert.
	fire := leakTime.Add(62 * time.Second)
	deadline := fire.Add(3 * time.Minute)
	found := false
	for ts := fire; ts.Before(deadline); ts = ts.Add(5 * time.Second) {
		mustTick(t, p, ts)
		if slackTitles(p)["ShastamonBreakerStuckOpen"] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ShastamonBreakerStuckOpen never reached Slack; titles = %v", slackTitles(p))
	}
	// The self-alert names the stuck dependency.
	ok := false
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			if att.Title == "ShastamonBreakerStuckOpen" && strings.Contains(att.Text, "servicenow") {
				ok = true
			}
		}
	}
	if !ok {
		t.Fatal("meta-alert does not identify the servicenow dependency")
	}
	// The hardware alert still went out on the healthy path.
	if slackTitles(p)["PerlmutterCabinetLeak"] == 0 {
		t.Fatal("leak alert missing from Slack")
	}
}

// TestMetaAlertSLOBurn: with a tightened latency target the leak's 62s
// detection breaches, the burn-rate gauge exceeds 1, and the
// ShastamonDetectionSLOBurn meta-alert lands in Slack.
func TestMetaAlertSLOBurn(t *testing.T) {
	p := newPipeline(t, Options{
		LogRules:   []ruler.Rule{leakRule},
		MetaAlerts: true,
		SLO:        obs.SLOConfig{Target: 30 * time.Second, Objective: 0.95},
	})
	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	mustTick(t, p, leakTime.Add(-time.Minute))
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	// Delivery (and the breach) happens in the +62s flush; the +63s tick
	// scrapes the burn-rate gauge into the TSDB, vmalert fires on it, and
	// the same flush delivers the meta-alert.
	for _, off := range []time.Duration{0, 61 * time.Second, 62 * time.Second,
		63 * time.Second, 64 * time.Second} {
		mustTick(t, p, leakTime.Add(off))
	}

	if slackTitles(p)["ShastamonDetectionSLOBurn"] == 0 {
		t.Fatalf("SLO-burn meta-alert missing; titles = %v", slackTitles(p))
	}
	rep := p.SLOReport()
	for _, r := range rep.Rules {
		if r.Rule == "PerlmutterCabinetLeak" {
			if r.Breached != 1 || r.BurnRate <= 1 {
				t.Fatalf("slo report = %+v, want 1 breach with burn > 1", r)
			}
			return
		}
	}
	t.Fatalf("slo report missing the leak rule: %+v", rep)
}
