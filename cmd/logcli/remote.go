package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"shastamon/internal/stats"
)

// queryRemote runs the query against a Loki-compatible HTTP API (the
// in-process engine exposed by cmd/omnid, or any server speaking
// /loki/api/v1/query[_range]). With showStats, the server's `statistics`
// block is rendered after the result.
func queryRemote(base, query, at string, since time.Duration, instant, showStats, noCache bool, output string) error {
	end, err := time.Parse(time.RFC3339, at)
	if err != nil {
		return fmt.Errorf("bad -at: %w", err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	if instant {
		q := url.Values{}
		q.Set("query", query)
		q.Set("time", strconv.FormatInt(end.UnixNano(), 10))
		var resp struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Data   struct {
				Result []struct {
					Metric map[string]string `json:"metric"`
					Value  [2]interface{}    `json:"value"`
				} `json:"result"`
				Statistics stats.Snapshot `json:"statistics"`
			} `json:"data"`
		}
		if err := getJSON(client, base+"/loki/api/v1/query?"+q.Encode(), &resp); err != nil {
			return err
		}
		if resp.Status != "success" {
			return fmt.Errorf("remote: %s", resp.Error)
		}
		for _, s := range resp.Data.Result {
			fmt.Printf("%s => %v\n", renderLabels(s.Metric), s.Value[1])
		}
		if len(resp.Data.Result) == 0 {
			fmt.Println("(empty vector)")
		}
		if showStats {
			printStats(resp.Data.Statistics, output)
		}
		return nil
	}
	q := url.Values{}
	q.Set("query", query)
	q.Set("start", strconv.FormatInt(end.Add(-since).UnixNano(), 10))
	q.Set("end", strconv.FormatInt(end.UnixNano(), 10))
	if noCache {
		q.Set("nocache", "1")
	}
	var resp struct {
		Status string `json:"status"`
		Error  string `json:"error"`
		Data   struct {
			ResultType string `json:"resultType"`
			Result     []struct {
				Stream map[string]string `json:"stream"`
				Values [][2]string       `json:"values"`
			} `json:"result"`
			Statistics stats.Snapshot `json:"statistics"`
		} `json:"data"`
	}
	if err := getJSON(client, base+"/loki/api/v1/query_range?"+q.Encode(), &resp); err != nil {
		return err
	}
	if resp.Status != "success" {
		return fmt.Errorf("remote: %s", resp.Error)
	}
	if resp.Data.ResultType != "streams" {
		return fmt.Errorf("remote returned %s; use -instant for metric queries", resp.Data.ResultType)
	}
	n := 0
	for _, s := range resp.Data.Result {
		fmt.Println(renderLabels(s.Stream))
		for _, v := range s.Values {
			ns, err := strconv.ParseInt(v[0], 10, 64)
			if err != nil {
				return fmt.Errorf("remote: bad timestamp %q", v[0])
			}
			fmt.Printf("  %s  %s\n", time.Unix(0, ns).UTC().Format(time.RFC3339), v[1])
			n++
		}
	}
	fmt.Printf("(%d entries, %d streams)\n", n, len(resp.Data.Result))
	if showStats {
		printStats(resp.Data.Statistics, output)
	}
	return nil
}

func getJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func renderLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k + `="` + m[k] + `"`
	}
	return out + "}"
}
