package logql

import (
	"fmt"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

func newTestStore(t *testing.T) *loki.Store {
	t.Helper()
	return loki.NewStore(loki.DefaultLimits())
}

func mustPush(t *testing.T, s *loki.Store, ls labels.Labels, entries ...loki.Entry) {
	t.Helper()
	if err := s.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
		t.Fatal(err)
	}
}

const leakLine = `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}`

func TestSelectLogsWithFilter(t *testing.T) {
	s := newTestStore(t)
	ls := labels.FromStrings("data_type", "redfish_event", "cluster", "perlmutter")
	mustPush(t, s, ls,
		loki.Entry{Timestamp: 1e9, Line: leakLine},
		loki.Entry{Timestamp: 2e9, Line: `{"Severity":"OK","MessageId":"CrayAlerts.1.0.Telemetry","Message":"nominal"}`},
	)
	eng := NewEngine(s)
	got, err := eng.QueryLogs(`{data_type="redfish_event"} |= "CabinetLeakDetected"`, 0, 3e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Entries) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestSelectLogsJSONRegroups(t *testing.T) {
	s := newTestStore(t)
	ls := labels.FromStrings("data_type", "redfish_event")
	mustPush(t, s, ls,
		loki.Entry{Timestamp: 1, Line: `{"Severity":"Warning"}`},
		loki.Entry{Timestamp: 2, Line: `{"Severity":"Critical"}`},
	)
	eng := NewEngine(s)
	got, err := eng.QueryLogs(`{data_type="redfish_event"} | json`, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 output streams, got %d", len(got))
	}
}

// Reproduces the paper's Fig. 5: the query result "increases from zero to
// one" at the event time and stays 1 for the 60-minute window.
func TestPaperFig5CountOverTime(t *testing.T) {
	s := newTestStore(t)
	// Event at 2022-03-03T01:47:57Z = the paper's leak event.
	eventTS := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC).UnixNano()
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	mustPush(t, s, ls, loki.Entry{Timestamp: eventTS, Line: leakLine})

	eng := NewEngine(s)
	q := `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, context, message_id, message)`

	// Before the event: zero (empty vector).
	vec, err := eng.QueryInstant(q, eventTS-int64(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 0 {
		t.Fatalf("pre-event vector: %+v", vec)
	}
	// Right at and within 60m after the event: exactly 1.
	for _, dt := range []time.Duration{0, 30 * time.Minute, 59 * time.Minute} {
		vec, err = eng.QueryInstant(q, eventTS+int64(dt))
		if err != nil {
			t.Fatal(err)
		}
		if len(vec) != 1 || vec[0].V != 1 {
			t.Fatalf("at +%v: %+v", dt, vec)
		}
		if vec[0].Labels.Get("severity") != "Warning" || vec[0].Labels.Get("message_id") != "CrayAlerts.1.0.CabinetLeakDetected" {
			t.Fatalf("labels: %v", vec[0].Labels)
		}
	}
	// After the window the count returns to zero.
	vec, err = eng.QueryInstant(q, eventTS+int64(61*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 0 {
		t.Fatalf("post-window vector: %+v", vec)
	}
}

// Multiple leaks from different locations return one vector per label set
// (paper: "Loki returns multiple vectors with different labels").
func TestFig5MultipleLocations(t *testing.T) {
	s := newTestStore(t)
	for i, ctx := range []string{"x1203c1b0", "x1102c4s0b0"} {
		ls := labels.FromStrings("Context", ctx, "cluster", "perlmutter", "data_type", "redfish_event")
		mustPush(t, s, ls, loki.Entry{Timestamp: int64(i+1) * 1e9, Line: leakLine})
	}
	eng := NewEngine(s)
	q := `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Context)`
	vec, err := eng.QueryInstant(q, int64(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2 {
		t.Fatalf("vectors: %+v", vec)
	}
}

// Reproduces the paper's Fig. 8 pipeline: pattern-extracted labels drive
// the grouping and a >0 threshold gates the alert.
func TestPaperFig8SwitchOffline(t *testing.T) {
	s := newTestStore(t)
	ls := labels.FromStrings("app", "fabric_manager_monitor", "cluster", "perlmutter")
	line := "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"
	mustPush(t, s, ls, loki.Entry{Timestamp: 1e9, Line: line})

	eng := NewEngine(s)
	q := `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (severity, problem, xname, state) > 0`
	vec, err := eng.QueryInstant(q, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 {
		t.Fatalf("vec: %+v", vec)
	}
	lbls := vec[0].Labels
	if lbls.Get("xname") != "x1002c1r7b0" || lbls.Get("state") != "UNKNOWN" || lbls.Get("severity") != "critical" {
		t.Fatalf("labels: %v", lbls)
	}
}

func TestRateAndBytes(t *testing.T) {
	s := newTestStore(t)
	ls := labels.FromStrings("app", "x")
	for i := 1; i <= 60; i++ {
		mustPush(t, s, ls, loki.Entry{Timestamp: int64(i) * 1e9, Line: "0123456789"})
	}
	eng := NewEngine(s)
	ts := int64(60 * 1e9)
	vec, err := eng.QueryInstant(`rate({app="x"}[60s])`, ts)
	if err != nil {
		t.Fatal(err)
	}
	// Window is (ts-60s, ts] = (0,60]: all 60 entries → 60/60s = 1/s.
	if len(vec) != 1 || vec[0].V != 1 {
		t.Fatalf("rate: %+v", vec)
	}
	vec, err = eng.QueryInstant(`bytes_over_time({app="x"}[60s])`, ts)
	if err != nil {
		t.Fatal(err)
	}
	if vec[0].V != 600 {
		t.Fatalf("bytes: %+v", vec)
	}
	vec, err = eng.QueryInstant(`bytes_rate({app="x"}[60s])`, ts)
	if err != nil {
		t.Fatal(err)
	}
	if vec[0].V != 10 {
		t.Fatalf("bytes_rate: %+v", vec)
	}
}

func TestAbsentOverTime(t *testing.T) {
	s := newTestStore(t)
	eng := NewEngine(s)
	vec, err := eng.QueryInstant(`absent_over_time({app="ghost"}[5m])`, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 1 || vec[0].Labels.Get("app") != "ghost" {
		t.Fatalf("absent: %+v", vec)
	}
	mustPush(t, s, labels.FromStrings("app", "ghost"), loki.Entry{Timestamp: 1e9, Line: "boo"})
	vec, err = eng.QueryInstant(`absent_over_time({app="ghost"}[5m])`, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 0 {
		t.Fatalf("absent with data: %+v", vec)
	}
}

func TestUnwrapAggregations(t *testing.T) {
	s := newTestStore(t)
	ls := labels.FromStrings("app", "gpfs")
	for i, v := range []string{"10", "20", "30", "garbage"} {
		mustPush(t, s, ls, loki.Entry{Timestamp: int64(i+1) * 1e9, Line: fmt.Sprintf("latency_ms=%s op=write", v)})
	}
	eng := NewEngine(s)
	cases := map[string]float64{
		`sum_over_time({app="gpfs"} | logfmt | unwrap latency_ms [1m])`: 60,
		`avg_over_time({app="gpfs"} | logfmt | unwrap latency_ms [1m])`: 20,
		`max_over_time({app="gpfs"} | logfmt | unwrap latency_ms [1m])`: 30,
		`min_over_time({app="gpfs"} | logfmt | unwrap latency_ms [1m])`: 10,
	}
	for q, want := range cases {
		vec, err := eng.QueryInstant(q, int64(time.Minute))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(vec) != 1 || vec[0].V != want {
			t.Fatalf("%s: got %+v want %g", q, vec, want)
		}
		if vec[0].Labels.Has("latency_ms") {
			t.Fatalf("unwrap label kept: %v", vec[0].Labels)
		}
	}
}

func TestVectorAggregations(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 3; i++ {
		ls := labels.FromStrings("node", fmt.Sprintf("n%d", i), "zone", "a")
		for j := 0; j <= i; j++ {
			mustPush(t, s, ls, loki.Entry{Timestamp: int64(j + 1), Line: "e"})
		}
	}
	eng := NewEngine(s)
	cases := map[string]float64{
		`sum(count_over_time({zone="a"}[1m]))`:   6,
		`min(count_over_time({zone="a"}[1m]))`:   1,
		`max(count_over_time({zone="a"}[1m]))`:   3,
		`avg(count_over_time({zone="a"}[1m]))`:   2,
		`count(count_over_time({zone="a"}[1m]))`: 3,
	}
	for q, want := range cases {
		vec, err := eng.QueryInstant(q, int64(time.Minute))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(vec) != 1 || vec[0].V != want {
			t.Fatalf("%s: got %+v want %g", q, vec, want)
		}
		if len(vec[0].Labels) != 0 {
			t.Fatalf("%s: ungrouped agg should drop labels: %v", q, vec[0].Labels)
		}
	}
}

func TestTopK(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 4; i++ {
		ls := labels.FromStrings("node", fmt.Sprintf("n%d", i))
		for j := 0; j <= i; j++ {
			mustPush(t, s, ls, loki.Entry{Timestamp: int64(j + 1), Line: "e"})
		}
	}
	eng := NewEngine(s)
	vec, err := eng.QueryInstant(`topk(2, count_over_time({}[1m]))`, int64(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2 || vec[0].V != 4 || vec[1].V != 3 {
		t.Fatalf("topk: %+v", vec)
	}
	vec, err = eng.QueryInstant(`bottomk(1, count_over_time({}[1m]))`, int64(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 1 {
		t.Fatalf("bottomk: %+v", vec)
	}
}

func TestRangeQueryMatrix(t *testing.T) {
	s := newTestStore(t)
	ls := labels.FromStrings("app", "x")
	// one event at t=100s
	mustPush(t, s, ls, loki.Entry{Timestamp: 100e9, Line: "boom"})
	eng := NewEngine(s)
	m, err := eng.QueryRange(`sum(count_over_time({app="x"}[60s]))`, 0, 300e9, 50*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("matrix: %+v", m)
	}
	// Steps: 0,50,100,150,200,250,300. Window 60s: counts at 100 and 150.
	got := map[int64]float64{}
	for _, p := range m[0].Points {
		got[p.T/1e9] = p.V
	}
	if got[100] != 1 || got[150] != 1 {
		t.Fatalf("points: %+v", m[0].Points)
	}
	if _, ok := got[200]; ok {
		t.Fatalf("window leak: %+v", m[0].Points)
	}
}

func TestCmpFilters(t *testing.T) {
	s := newTestStore(t)
	mustPush(t, s, labels.FromStrings("n", "1"), loki.Entry{Timestamp: 1, Line: "e"})
	mustPush(t, s, labels.FromStrings("n", "2"), loki.Entry{Timestamp: 1, Line: "e"}, loki.Entry{Timestamp: 2, Line: "e"})
	eng := NewEngine(s)
	vec, err := eng.QueryInstant(`count_over_time({}[1m]) > 1`, int64(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].Labels.Get("n") != "2" {
		t.Fatalf("cmp: %+v", vec)
	}
	vec, _ = eng.QueryInstant(`count_over_time({}[1m]) == 1`, int64(time.Minute))
	if len(vec) != 1 || vec[0].Labels.Get("n") != "1" {
		t.Fatalf("==: %+v", vec)
	}
}

func TestInstantOnLogExprFails(t *testing.T) {
	eng := NewEngine(newTestStore(t))
	expr, err := ParseExpr(`{a="b"}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Instant(expr, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRangeBadStep(t *testing.T) {
	eng := NewEngine(newTestStore(t))
	if _, err := eng.QueryRange(`count_over_time({}[1m])`, 0, 10, 0); err == nil {
		t.Fatal("expected error on zero step")
	}
}

func BenchmarkCountOverTimeFilterOnly(b *testing.B) {
	benchQuery(b, `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" [60m]))`)
}

func BenchmarkCountOverTimeJSON(b *testing.B) {
	benchQuery(b, `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, message_id)`)
}

func BenchmarkCountOverTimePattern(b *testing.B) {
	benchQuery(b, `sum(count_over_time({data_type="redfish_event"} |~ "Leak" | pattern "{\"Severity\":\"<severity>\",<_>" [60m])) by (severity)`)
}

func benchQuery(b *testing.B, q string) {
	s := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("data_type", "redfish_event", "cluster", "perlmutter")
	entries := make([]loki.Entry, 10000)
	for i := range entries {
		entries[i] = loki.Entry{Timestamp: int64(i) * 1e6, Line: leakLine}
	}
	if err := s.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(s)
	expr, err := ParseMetricExpr(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec, err := eng.Instant(expr, int64(time.Hour))
		if err != nil || len(vec) == 0 {
			b.Fatalf("vec=%v err=%v", vec, err)
		}
	}
}
