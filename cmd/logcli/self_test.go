package main

import (
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/promql"
	"shastamon/internal/tsdb"
)

func TestSelfQueries(t *testing.T) {
	if got := selfQueries(""); !reflect.DeepEqual(got, selfDefaults) {
		t.Fatalf("empty -q = %v, want the default set", got)
	}
	cases := map[string]string{
		"breaker_state":                          "shastamon_breaker_state",
		"shastamon_slo_burn_rate":                "shastamon_slo_burn_rate",
		"  dlq_records_total ":                   "shastamon_dlq_records_total",
		`up{job="shastamon"}`:                    `up{job="shastamon"}`, // full PromQL passes through
		`max(shastamon_slo_burn_rate) by (rule)`: `max(shastamon_slo_burn_rate) by (rule)`,
	}
	for in, want := range cases {
		got := selfQueries(in)
		if len(got) != 1 || got[0] != want {
			t.Fatalf("selfQueries(%q) = %v, want [%s]", in, got, want)
		}
	}
}

func TestQuerySelfAgainstPromAPI(t *testing.T) {
	db := tsdb.New()
	at := time.Date(2022, 3, 3, 2, 0, 0, 0, time.UTC)
	if err := db.AppendMetric("shastamon_breaker_state",
		labels.FromStrings("dependency", "servicenow"), at.UnixMilli(), 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(promql.NewEngine(db).Handler())
	defer srv.Close()

	if err := querySelf(srv.URL, at.Format(time.RFC3339), "breaker_state"); err != nil {
		t.Fatal(err)
	}
	if err := querySelf(srv.URL, "not-a-time", ""); err == nil {
		t.Fatal("bad -at accepted")
	}
	if err := querySelf(srv.URL, at.Format(time.RFC3339), "sum(shastamon_breaker_state) by ("); err == nil {
		t.Fatal("remote error not propagated")
	}
}
