package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"shastamon/internal/chaos"
	"shastamon/internal/labels"
	"shastamon/internal/wal"
)

func seriesLabels(i int) labels.Labels {
	return labels.FromStrings(MetricNameLabel, "node_load1", "host", fmt.Sprintf("nid%04d", i))
}

func appendAll(t *testing.T, db *DB, series, samples int) {
	t.Helper()
	for ts := 0; ts < samples; ts++ {
		for s := 0; s < series; s++ {
			if err := db.Append(seriesLabels(s), int64(ts)*1000, float64(s)+float64(ts)/100); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
}

func openDurableDB(t *testing.T, dir string, opt wal.StoreOptions) (*DB, RecoveryInfo) {
	t.Helper()
	db := NewSharded(2)
	info, err := db.EnableDurability(dir, opt)
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return db, info
}

func assertDBsMatch(t *testing.T, got, want *DB) {
	t.Helper()
	g := got.Select(nil, 0, 1<<62)
	w := want.Select(nil, 0, 1<<62)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("recovered series differ: got %d, want %d", len(g), len(w))
	}
	gs, ws := got.Stats(), want.Stats()
	gs.Dropped, ws.Dropped = 0, 0
	if gs != ws {
		t.Fatalf("recovered stats differ: got %+v want %+v", gs, ws)
	}
}

// TestTSDBCrashRecovery: a head abandoned without Shutdown recovers from
// WAL replay with identical samples and counters.
func TestTSDBCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db1, info := openDurableDB(t, dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}})
	if info.Checkpoint || info.Replayed != 0 {
		t.Fatalf("fresh dir: %+v", info)
	}
	appendAll(t, db1, 8, 50)

	ref := NewSharded(2)
	appendAll(t, ref, 8, 50)

	db2, info := openDurableDB(t, dir, wal.StoreOptions{})
	if info.Clean || info.Replayed != 8*50 {
		t.Fatalf("crash recovery: %+v", info)
	}
	assertDBsMatch(t, db2, ref)
}

// TestTSDBCheckpointBoundsReplay: post-checkpoint recovery restores the
// snapshot and replays only post-cut records.
func TestTSDBCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	db1, _ := openDurableDB(t, dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}})
	appendAll(t, db1, 4, 30)
	if err := db1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for ts := 30; ts < 60; ts++ {
		for s := 0; s < 4; s++ {
			if err := db1.Append(seriesLabels(s), int64(ts)*1000, float64(ts)); err != nil {
				t.Fatal(err)
			}
		}
	}

	db2, info := openDurableDB(t, dir, wal.StoreOptions{})
	if !info.Checkpoint || info.Replayed != 4*30 {
		t.Fatalf("bounded replay: %+v", info)
	}
	if got := db2.Stats().Samples; got != 4*60 {
		t.Fatalf("recovered %d samples, want %d", got, 4*60)
	}
}

// TestTSDBCleanShutdown: CLEAN marker skips replay entirely.
func TestTSDBCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	db1, _ := openDurableDB(t, dir, wal.StoreOptions{})
	appendAll(t, db1, 5, 40)
	if err := db1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err != nil {
		t.Fatalf("CLEAN marker missing: %v", err)
	}

	ref := NewSharded(2)
	appendAll(t, ref, 5, 40)

	db2, info := openDurableDB(t, dir, wal.StoreOptions{})
	if !info.Clean || info.Replayed != 0 {
		t.Fatalf("clean restart: %+v", info)
	}
	assertDBsMatch(t, db2, ref)
}

// TestTSDBCrashAfterCleanRestart mirrors the log store's
// generation-boundary regression: stale checkpoint cuts must not prune
// the fresh segments written after a clean restart.
func TestTSDBCrashAfterCleanRestart(t *testing.T) {
	dir := t.TempDir()
	always := wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}}

	db1, _ := openDurableDB(t, dir, always)
	appendAll(t, db1, 4, 30)
	if err := db1.Shutdown(); err != nil { // checkpoints, records cuts ≥ 2
		t.Fatal(err)
	}

	db2, info := openDurableDB(t, dir, always)
	if !info.Clean {
		t.Fatalf("expected clean restart: %+v", info)
	}
	for ts := 30; ts < 60; ts++ {
		for s := 0; s < 4; s++ {
			if err := db2.Append(seriesLabels(s), int64(ts)*1000, float64(s)+float64(ts)/100); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: second generation abandoned without Shutdown.

	ref := NewSharded(2)
	appendAll(t, ref, 4, 60)

	db3, info := openDurableDB(t, dir, wal.StoreOptions{})
	if info.Clean || info.Replayed != 4*30 {
		t.Fatalf("post-clean-restart crash recovery: %+v (want %d replayed)", info, 4*30)
	}
	assertDBsMatch(t, db3, ref)
}

// TestTSDBDiskFaultDegrades mirrors the log store's degradation contract
// for the metrics head.
func TestTSDBDiskFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(11)
	var mu sync.Mutex
	now := time.Unix(2000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	db, _ := openDurableDB(t, dir, wal.StoreOptions{
		Options:          wal.Options{Fsync: wal.FsyncAlways, WrapWriter: inj.WriterWrapper("disk.write"), Now: clock},
		BreakerThreshold: 2,
		BreakerOpenFor:   5 * time.Second,
	})
	appendAll(t, db, 3, 10)
	inj.Set("disk.write", chaos.Fault{ErrProb: 1, Err: syscall.ENOSPC})
	for ts := 10; ts < 40; ts++ {
		for s := 0; s < 3; s++ {
			if err := db.Append(seriesLabels(s), int64(ts)*1000, 1); err != nil {
				t.Fatalf("ingest blocked by disk fault: %v", err)
			}
		}
	}
	st := db.WALStats()
	if st.Degraded != 1 || st.Skipped == 0 {
		t.Fatalf("degraded phase: %+v", st)
	}
	inj.ClearAll()
	mu.Lock()
	now = now.Add(6 * time.Second)
	mu.Unlock()
	for ts := 40; ts < 50; ts++ {
		for s := 0; s < 3; s++ {
			if err := db.Append(seriesLabels(s), int64(ts)*1000, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	st2 := db.WALStats()
	if st2.Degraded != 0 || st2.Appends <= st.Appends {
		t.Fatalf("healed phase: %+v -> %+v", st, st2)
	}
	if got := db.Stats().Samples; got != int64(3*50) {
		t.Fatalf("samples lost in memory: %d", got)
	}
}
