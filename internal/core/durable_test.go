package core

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"shastamon/internal/chaos"
	"shastamon/internal/ruler"
	"shastamon/internal/wal"
)

// copyTree copies src into dst — the crash image: whatever bytes are on
// disk at the instant of the "SIGKILL", with no shutdown hooks run.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy %s: %v", src, err)
	}
}

// TestCrashRecoveryPipeline is the end-to-end crash drill: a durable
// pipeline ingests real telemetry (leak event included), the data
// directory is snapshotted mid-flight — the on-disk state an abrupt kill
// would leave, CLEAN marker absent — and a second pipeline started from
// that snapshot must answer the same queries with byte-identical results.
func TestCrashRecoveryPipeline(t *testing.T) {
	dir := t.TempDir()
	p := newPipeline(t, Options{
		LogRules: []ruler.Rule{leakRule},
		DataDir:  dir,
		WAL:      wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}},
	})
	t0 := time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC)
	mustTick(t, p, t0)
	leakTime := t0.Add(2 * time.Minute)
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, leakTime)
	mustTick(t, p, leakTime.Add(61*time.Second))
	mustTick(t, p, leakTime.Add(62*time.Second))

	const logQ = `{data_type="redfish_event"} |= "CabinetLeakDetected"`
	wantLogs, err := p.Warehouse.QueryLogs(logQ, 0, leakTime.Add(time.Hour).UnixNano())
	if err != nil || len(wantLogs) == 0 {
		t.Fatalf("pre-crash leak query: %v %v", wantLogs, err)
	}
	wantMetrics := p.Warehouse.Metrics.Select(nil, 0, 1<<62)
	wantStats := p.Warehouse.Stats()

	// Snapshot the live directory: p has NOT shut down, so the copy holds
	// open WAL tails and no CLEAN marker — exactly what a kill leaves.
	crashDir := t.TempDir()
	copyTree(t, dir, crashDir)

	p2 := newPipeline(t, Options{LogRules: []ruler.Rule{leakRule}, DataDir: crashDir})
	rec, ok := p2.Warehouse.Recovery()
	if !ok || rec.Logs.Clean || rec.Metrics.Clean || rec.Replayed() == 0 {
		t.Fatalf("expected dirty recovery with replay: %+v (ok=%v)", rec, ok)
	}
	gotLogs, err := p2.Warehouse.QueryLogs(logQ, 0, leakTime.Add(time.Hour).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLogs, wantLogs) {
		t.Fatal("recovered leak-event query differs from pre-crash result")
	}
	if got := p2.Warehouse.Metrics.Select(nil, 0, 1<<62); !reflect.DeepEqual(got, wantMetrics) {
		t.Fatal("recovered metric series differ from pre-crash state")
	}
	// Store-level stats must match exactly. (The façade counters are
	// resynced from store contents at Open, so they additionally cover
	// scrape-path samples that never passed through IngestMetric.)
	gotStats := p2.Warehouse.Stats()
	if gotStats.LogStore != wantStats.LogStore || gotStats.MetricStore != wantStats.MetricStore {
		t.Fatalf("store stats not restored: got %+v want %+v", gotStats, wantStats)
	}
}

// TestCrashRecoveryCleanRestart: a pipeline closed properly leaves CLEAN
// markers, and a successor on the same directory starts replay-free with
// all data intact.
func TestCrashRecoveryCleanRestart(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Options{Cluster: smallCluster(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close) // Close is idempotent; the explicit call below is the test

	t0 := time.Date(2022, 3, 3, 2, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		mustTick(t, p, t0.Add(time.Duration(i)*5*time.Second))
	}
	wantStats := p.Warehouse.Stats()
	p.Close() // Close flushes durable state and writes CLEAN

	p2 := newPipeline(t, Options{DataDir: dir})
	rec, _ := p2.Warehouse.Recovery()
	if !rec.Logs.Clean || !rec.Metrics.Clean || rec.Replayed() != 0 {
		t.Fatalf("clean restart should skip replay: %+v", rec)
	}
	gotStats := p2.Warehouse.Stats()
	if gotStats.LogStore != wantStats.LogStore || gotStats.MetricStore != wantStats.MetricStore {
		t.Fatalf("clean restart lost data: got %+v want %+v", gotStats, wantStats)
	}
}

// TestWALDegradedMetaAlert: the disk fills mid-run (ENOSPC on every WAL
// write). Ingest must never block — ticks stay clean, counters keep
// growing — while the ShastamonWALDegraded meta-alert reaches Slack
// through the normal Alertmanager path. Clearing the fault and waiting
// out the breaker window resumes WAL appends.
func TestWALDegradedMetaAlert(t *testing.T) {
	inj := chaos.New(5)
	dir := t.TempDir()
	p := newPipeline(t, Options{
		LogRules:   []ruler.Rule{leakRule},
		MetaAlerts: true,
		DataDir:    dir,
		WAL: wal.StoreOptions{
			Options:          wal.Options{Fsync: wal.FsyncAlways, WrapWriter: inj.WriterWrapper("disk.write")},
			BreakerThreshold: 2,
			BreakerOpenFor:   10 * time.Second,
		},
		CheckpointEvery: time.Hour, // keep the checkpoint stage out of the fault window
	})
	t0 := time.Date(2022, 3, 3, 3, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	healthyStats := p.Warehouse.Stats()

	inj.Set("disk.write", chaos.Fault{ErrProb: 1, Err: syscall.ENOSPC})
	deadline := t0.Add(3 * time.Minute)
	var ts time.Time
	found := false
	for ts = t0.Add(5 * time.Second); ts.Before(deadline); ts = ts.Add(5 * time.Second) {
		mustTick(t, p, ts) // a failing disk must never fail a tick
		if slackTitles(p)["ShastamonWALDegraded"] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ShastamonWALDegraded never reached Slack; titles = %v", slackTitles(p))
	}
	if !p.Warehouse.WALDegraded() {
		t.Fatal("warehouse not marked degraded")
	}
	// Ingest continued throughout the outage. (Core ticks only produce
	// metric traffic without an injected hardware fault, so the metrics
	// store is where stalling would show.)
	if st := p.Warehouse.Stats(); st.MetricStore.Samples <= healthyStats.MetricStore.Samples {
		t.Fatalf("ingest stalled during disk outage: %+v -> %+v", healthyStats, st)
	}
	// The self-alert names the degraded store.
	named := false
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			if att.Title == "ShastamonWALDegraded" &&
				(strings.Contains(att.Text, "logs") || strings.Contains(att.Text, "metrics")) {
				named = true
			}
		}
	}
	if !named {
		t.Fatal("meta-alert does not identify the degraded store")
	}

	// Disk heals; after the 10s open window a probe append succeeds and
	// the warehouse leaves degraded mode.
	inj.ClearAll()
	before := p.Warehouse.Metrics.WALStats().Appends
	for i := 1; i <= 4; i++ {
		mustTick(t, p, ts.Add(time.Duration(i)*6*time.Second))
	}
	if p.Warehouse.WALDegraded() {
		t.Fatalf("still degraded after heal: logs=%+v metrics=%+v",
			p.Warehouse.Logs.WALStats(), p.Warehouse.Metrics.WALStats())
	}
	if after := p.Warehouse.Metrics.WALStats().Appends; after <= before {
		t.Fatalf("WAL appends did not resume: %d -> %d", before, after)
	}
	// The united breaker gauge saw the WAL breaker close again.
	if v, ok := queryLabeled(t, p, "shastamon_breaker_state", ts.Add(24*time.Second).UnixMilli(), "dependency", "wal:metrics"); !ok || v != 0 {
		t.Fatalf("breaker_state{dependency=wal:metrics} = %v (ok=%v), want 0", v, ok)
	}
}
