package logql

import (
	"testing"

	"shastamon/internal/labels"
)

func TestLineFilters(t *testing.T) {
	base := labels.FromStrings("a", "b")
	cases := []struct {
		op   tokKind
		arg  string
		line string
		keep bool
	}{
		{tokPipeExact, "leak", "a leak was detected", true},
		{tokPipeExact, "leak", "all dry", false},
		{tokNeq, "leak", "all dry", true},
		{tokNeq, "leak", "a leak", false},
		{tokPipeMatch, "x1[0-9]+", "at x1002c1", true},
		{tokPipeMatch, "x1[0-9]+", "at y2", false},
		{tokNre, "x1[0-9]+", "at y2", true},
	}
	for _, c := range cases {
		st, err := newLineFilter(c.op, c.arg)
		if err != nil {
			t.Fatal(err)
		}
		_, _, keep := st.Process(c.line, base)
		if keep != c.keep {
			t.Errorf("%s %q on %q: keep=%v", c.op, c.arg, c.line, keep)
		}
	}
}

func TestJSONStageExtractsSnakeCase(t *testing.T) {
	line := `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' detected a leak."}`
	_, lbls, keep := jsonStage{}.Process(line, labels.FromStrings("cluster", "perlmutter"))
	if !keep {
		t.Fatal("dropped")
	}
	if lbls.Get("severity") != "Warning" {
		t.Fatalf("severity: %v", lbls)
	}
	if lbls.Get("message_id") != "CrayAlerts.1.0.CabinetLeakDetected" {
		t.Fatalf("message_id: %v", lbls)
	}
	if lbls.Get("cluster") != "perlmutter" {
		t.Fatal("stream label lost")
	}
}

func TestJSONStageNested(t *testing.T) {
	line := `{"Oem":{"Sensor":{"Reading":42.5}},"Ok":true,"Tags":["a","b"],"Null":null}`
	_, lbls, _ := jsonStage{}.Process(line, nil)
	if lbls.Get("oem_sensor_reading") != "42.5" {
		t.Fatalf("nested: %v", lbls)
	}
	if lbls.Get("ok") != "true" {
		t.Fatalf("bool: %v", lbls)
	}
	if lbls.Get("tags") != `["a","b"]` {
		t.Fatalf("array: %v", lbls)
	}
	if lbls.Has("null") {
		t.Fatal("null extracted")
	}
}

func TestJSONStageDoesNotOverwrite(t *testing.T) {
	line := `{"cluster":"other"}`
	_, lbls, _ := jsonStage{}.Process(line, labels.FromStrings("cluster", "perlmutter"))
	if lbls.Get("cluster") != "perlmutter" {
		t.Fatalf("stream label overwritten: %v", lbls)
	}
}

func TestJSONStageBadLine(t *testing.T) {
	_, lbls, keep := jsonStage{}.Process("not json", nil)
	if !keep || lbls.Get("__error__") != "JSONParserErr" {
		t.Fatalf("bad line: keep=%v labels=%v", keep, lbls)
	}
}

func TestToSnake(t *testing.T) {
	cases := map[string]string{
		"Severity":       "severity",
		"MessageId":      "message_id",
		"EventTimestamp": "event_timestamp",
		"already_snake":  "already_snake",
		"with-dash":      "with_dash",
		"A":              "a",
		"ABC":            "abc",
		"@odata.id":      "_odata_id",
	}
	for in, want := range cases {
		if got := toSnake(in); got != want {
			t.Errorf("toSnake(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLogfmtStage(t *testing.T) {
	line := `level=info msg="switch state changed" xname=x1002c1r7b0 latency=12.5`
	_, lbls, keep := logfmtStage{}.Process(line, labels.FromStrings("app", "fm"))
	if !keep {
		t.Fatal("dropped")
	}
	if lbls.Get("msg") != "switch state changed" {
		t.Fatalf("quoted value: %v", lbls)
	}
	if lbls.Get("xname") != "x1002c1r7b0" || lbls.Get("latency") != "12.5" {
		t.Fatalf("labels: %v", lbls)
	}
}

func TestPatternStagePaperTemplate(t *testing.T) {
	// Fig. 8's pattern on the Fig. 7 sample event.
	st, err := newPatternStage("[<severity>] problem:<problem>, xname:<xname>, state:<state>")
	if err != nil {
		t.Fatal(err)
	}
	line := "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"
	_, lbls, keep := st.Process(line, nil)
	if !keep {
		t.Fatal("dropped")
	}
	want := map[string]string{
		"severity": "critical",
		"problem":  "fm_switch_offline",
		"xname":    "x1002c1r7b0",
		"state":    "UNKNOWN",
	}
	for k, v := range want {
		if lbls.Get(k) != v {
			t.Errorf("%s = %q, want %q (%v)", k, lbls.Get(k), v, lbls)
		}
	}
}

func TestPatternStageNoMatch(t *testing.T) {
	st, _ := newPatternStage("[<severity>] problem:<problem>")
	_, lbls, keep := st.Process("unrelated line", nil)
	if !keep {
		t.Fatal("non-matching line dropped")
	}
	if lbls.Get("__error__") != "PatternParserErr" {
		t.Fatalf("labels: %v", lbls)
	}
}

func TestPatternStageDiscard(t *testing.T) {
	st, err := newPatternStage("<_> took <ms>ms")
	if err != nil {
		t.Fatal(err)
	}
	_, lbls, _ := st.Process("request /api/foo took 25ms", nil)
	if lbls.Get("ms") != "25" {
		t.Fatalf("ms: %v", lbls)
	}
	if lbls.Has("_") {
		t.Fatal("discard capture leaked")
	}
}

func TestPatternStageErrors(t *testing.T) {
	for _, tpl := range []string{"no captures", "<unclosed", "<>", "<bad name>"} {
		if _, err := newPatternStage(tpl); err == nil {
			t.Errorf("no error for %q", tpl)
		}
	}
}

func TestRegexpStage(t *testing.T) {
	st, err := newRegexpStage(`nid(?P<nid>\d+)`)
	if err != nil {
		t.Fatal(err)
	}
	_, lbls, _ := st.Process("error on nid001234 link", nil)
	if lbls.Get("nid") != "001234" {
		t.Fatalf("nid: %v", lbls)
	}
	if _, err := newRegexpStage(`no captures`); err == nil {
		t.Fatal("regexp without captures accepted")
	}
	if _, err := newRegexpStage(`(`); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

func TestLabelFilterString(t *testing.T) {
	m := labels.MustMatcher(labels.MatchEqual, "severity", "Warning")
	st := &labelFilterStage{matcher: m}
	lbls := labels.FromStrings("severity", "Warning")
	if _, _, keep := st.Process("l", lbls); !keep {
		t.Fatal("should keep")
	}
	if _, _, keep := st.Process("l", labels.FromStrings("severity", "OK")); keep {
		t.Fatal("should drop")
	}
}

func TestLabelFilterNumeric(t *testing.T) {
	st := &labelFilterStage{name: "value", op: CmpGT, num: 5}
	if _, _, keep := st.Process("l", labels.FromStrings("value", "10")); !keep {
		t.Fatal("10 > 5 should keep")
	}
	if _, _, keep := st.Process("l", labels.FromStrings("value", "2")); keep {
		t.Fatal("2 > 5 should drop")
	}
	// Non-numeric label fails the filter.
	if _, _, keep := st.Process("l", labels.FromStrings("value", "NaNope")); keep {
		t.Fatal("non-numeric should drop")
	}
}

func TestLineFormatStage(t *testing.T) {
	st := &lineFormatStage{template: "{{.severity}}: {{.message}}"}
	lbls := labels.FromStrings("severity", "Warning", "message", "leak detected")
	line, _, _ := st.Process("original", lbls)
	if line != "Warning: leak detected" {
		t.Fatalf("line: %q", line)
	}
}

func TestLabelFormatRename(t *testing.T) {
	st := &labelFormatStage{dst: "location", src: "Context"}
	_, lbls, _ := st.Process("l", labels.FromStrings("Context", "x1203c1b0"))
	if lbls.Get("location") != "x1203c1b0" || lbls.Has("Context") {
		t.Fatalf("rename: %v", lbls)
	}
}

func TestLabelFormatTemplate(t *testing.T) {
	st := &labelFormatStage{dst: "id", template: "{{.a}}-{{.b}}"}
	_, lbls, _ := st.Process("l", labels.FromStrings("a", "x", "b", "y"))
	if lbls.Get("id") != "x-y" {
		t.Fatalf("template: %v", lbls)
	}
}

func TestRunPipelineShortCircuits(t *testing.T) {
	f1, _ := newLineFilter(tokPipeExact, "present")
	f2, _ := newLineFilter(tokPipeExact, "absent")
	_, _, keep := runPipeline([]Stage{f1, f2}, "present only", nil)
	if keep {
		t.Fatal("should drop at second filter")
	}
}
