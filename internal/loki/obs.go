package loki

import (
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Metrics lazily builds the store's self-monitoring registry. Every family
// is derived at gather time from Stats(), so the ingest hot path pays no
// additional accounting cost.
func (s *Store) Metrics() *obs.Registry {
	s.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		reg.Collect(func() []promtext.Family {
			st := s.Stats()
			return []promtext.Family{
				obs.Fam("gauge", obs.Namespace+"loki_streams",
					"Live log streams (distinct label sets).", float64(st.Streams)),
				obs.Fam("gauge", obs.Namespace+"loki_chunks",
					"Chunks held across all streams, including open heads.", float64(st.Chunks)),
				obs.Fam("counter", obs.Namespace+"loki_entries_total",
					"Log entries accepted for ingestion.", float64(st.Entries)),
				obs.Fam("counter", obs.Namespace+"loki_ingest_bytes_total",
					"Raw log bytes accepted for ingestion.", float64(st.RawBytes)),
				obs.Fam("counter", obs.Namespace+"loki_compressed_bytes_total",
					"Bytes held after chunk compression.", float64(st.CompressedBytes)),
				obs.Sample(obs.Fam("counter", obs.Namespace+"loki_discarded_total",
					"Entries rejected by ingest limits, by reason.",
					float64(st.DiscardedOOO), "reason", "out_of_order"),
					float64(st.DiscardedTooLong), "reason", "too_long"),
			}
		})
		s.obsReg = reg
	})
	return s.obsReg
}
