package promtext

import (
	"strings"
	"testing"

	"shastamon/internal/labels"
)

func TestExemplarWriteParseRoundTrip(t *testing.T) {
	in := []Family{{
		Name: "lat_bucket", Type: "histogram",
		Metrics: []Metric{
			{
				Name:   "lat_bucket",
				Labels: labels.FromStrings("le", "75", "rule", "cabinet_leak"),
				Value:  1,
				Exemplar: &Exemplar{
					Labels:    labels.FromStrings("trace_id", "00ab-000001"),
					Value:     62.003,
					Timestamp: 1646272077000,
				},
			},
			{
				Name:   "lat_bucket",
				Labels: labels.FromStrings("le", "+Inf", "rule", "cabinet_leak"),
				Value:  1,
				// No-timestamp exemplar stays valid OpenMetrics.
				Exemplar: &Exemplar{Labels: labels.FromStrings("trace_id", "x"), Value: 1.5},
			},
		},
	}}
	var b strings.Builder
	if err := Write(&b, in); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	want := `lat_bucket{le="75",rule="cabinet_leak"} 1 # {trace_id="00ab-000001"} 62.003 1646272077000`
	if !strings.Contains(text, want) {
		t.Fatalf("rendered:\n%s\nwant line %q", text, want)
	}

	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	ms := Samples(fams)
	if len(ms) != 2 {
		t.Fatalf("parsed %d samples, want 2", len(ms))
	}
	ex := ms[0].Exemplar
	if ex == nil || ex.Labels.Get("trace_id") != "00ab-000001" ||
		ex.Value != 62.003 || ex.Timestamp != 1646272077000 {
		t.Fatalf("exemplar round-trip = %+v", ex)
	}
	if ms[0].Value != 1 || ms[0].Labels.Get("le") != "75" {
		t.Fatalf("sample corrupted by exemplar: %+v", ms[0])
	}
	ex = ms[1].Exemplar
	if ex == nil || ex.Timestamp != 0 || ex.Value != 1.5 {
		t.Fatalf("timestampless exemplar = %+v", ex)
	}
}

func TestExemplarWithSampleTimestamp(t *testing.T) {
	// Value, sample timestamp AND exemplar on one line.
	line := `lat_bucket{le="5"} 3 1646272000000 # {trace_id="t"} 2.5` + "\n"
	fams, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	m := Samples(fams)[0]
	if m.Value != 3 || m.Timestamp != 1646272000000 {
		t.Fatalf("sample = %+v", m)
	}
	if m.Exemplar == nil || m.Exemplar.Value != 2.5 {
		t.Fatalf("exemplar = %+v", m.Exemplar)
	}
}

func TestExemplarParseErrors(t *testing.T) {
	for _, line := range []string{
		`m 1 # trace_id 2`,      // exemplar must open with '{'
		`m 1 # {trace_id="t"}`,  // missing exemplar value
		`m 1 # {trace_id="t} 2`, // unterminated label value
		`m 1 # {trace_id="t"} x`,
	} {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed exemplar", line)
		}
	}
}
