package core

import (
	"context"
	"fmt"
	"time"

	"shastamon/internal/anomaly"
)

// ErrorHeatmap computes the node × time-bucket error-density grid over
// [start, end) at the given step: for every hostname, how many
// error-or-worse syslog lines it logged per bucket. The aggregation runs
// as one LogQL range query through the query frontend, so it is
// time-split, shard-fanned and results-cached like any dashboard query —
// the heatmap endpoint costs the same as a refresh, not a table scan.
func (p *Pipeline) ErrorHeatmap(ctx context.Context, start, end time.Time, step time.Duration) (anomaly.Heatmap, error) {
	if step <= 0 {
		step = time.Minute
	}
	q := fmt.Sprintf(
		`sum(count_over_time({data_type="syslog", severity=~"err|crit|alert|emerg"}[%s])) by (hostname)`,
		model(step))
	m, err := p.Warehouse.LogQL.QueryRangeContext(ctx, q, start.UnixNano(), end.UnixNano(), step)
	if err != nil {
		return anomaly.Heatmap{}, err
	}
	var cells []anomaly.Cell
	for _, series := range m {
		node := series.Labels.Get("hostname")
		if node == "" {
			node = "(unknown)"
		}
		for _, pt := range series.Points {
			if pt.V == 0 {
				continue
			}
			// Each evaluation point counts the window ending at pt.T; file
			// it under the bucket that window covers.
			cells = append(cells, anomaly.Cell{
				Node:  node,
				Time:  time.Unix(0, pt.T).Add(-step),
				Value: pt.V,
			})
		}
	}
	return anomaly.BuildHeatmap(q, start, end, step, cells), nil
}

// model formats a duration the LogQL parser accepts (no unit mixing
// needed for the whole-second steps heatmaps use).
func model(d time.Duration) string {
	if d%time.Minute == 0 {
		return fmt.Sprintf("%dm", int(d/time.Minute))
	}
	return fmt.Sprintf("%ds", int(d/time.Second))
}
