// Package promtext encodes and parses the Prometheus text exposition
// format (version 0.0.4), the wire format between the exporters HPE and
// NERSC install and the vmagent scraper.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"shastamon/internal/labels"
)

// Metric is one exposition line: a metric name, labels, and a value.
// Timestamp is optional (0 means "now at scrape time"). An optional
// OpenMetrics-style exemplar may ride on the line (histogram buckets use
// this to link a bucket to a concrete trace ID).
type Metric struct {
	Name      string
	Labels    labels.Labels
	Value     float64
	Timestamp int64 // milliseconds since epoch, 0 if absent
	Exemplar  *Exemplar
}

// Exemplar is an OpenMetrics exemplar: a labelled example observation
// attached to a sample, rendered as
//
//	name{le="2.5"} 4 # {trace_id="00ab-000001"} 1.7 1646272077000
//
// Timestamp is in milliseconds since epoch, 0 if absent.
type Exemplar struct {
	Labels    labels.Labels
	Value     float64
	Timestamp int64
}

// Family groups metrics of one name with HELP/TYPE metadata.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	Metrics []Metric
}

// Write renders families in exposition order. Families and their metrics
// are written in the given order; callers sort if determinism matters.
func Write(w io.Writer, families []Family) error {
	bw := bufio.NewWriter(w)
	for _, f := range families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if f.Type != "" {
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
				return err
			}
		}
		for _, m := range f.Metrics {
			if err := writeMetric(bw, m); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeMetric(w io.Writer, m Metric) error {
	var b strings.Builder
	b.WriteString(m.Name)
	if len(m.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range m.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(m.Value))
	if m.Timestamp != 0 {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(m.Timestamp, 10))
	}
	if e := m.Exemplar; e != nil {
		b.WriteString(" # {")
		for i, l := range e.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteString("} ")
		b.WriteString(formatValue(e.Value))
		if e.Timestamp != 0 {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(e.Timestamp, 10))
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue applies the exposition-format escaping rules: only
// backslash, double quote and newline are escaped.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\n", "\\n")
}

// Parse reads an exposition document and returns all samples. HELP/TYPE
// comments are folded into the returned families; unknown comment lines are
// ignored, matching Prometheus scrape behaviour.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	famIdx := map[string]int{}
	var fams []Family
	getFam := func(name string) *Family {
		if i, ok := famIdx[name]; ok {
			return &fams[i]
		}
		fams = append(fams, Family{Name: name})
		famIdx[name] = len(fams) - 1
		return &fams[len(fams)-1]
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) >= 3 {
				switch parts[1] {
				case "HELP":
					f := getFam(parts[2])
					if len(parts) == 4 {
						f.Help = parts[3]
					}
				case "TYPE":
					f := getFam(parts[2])
					if len(parts) == 4 {
						f.Type = parts[3]
					}
				}
			}
			continue
		}
		m, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		f := getFam(m.Name)
		f.Metrics = append(f.Metrics, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseSample(line string) (Metric, error) {
	var m Metric
	i := 0
	// metric name
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return m, fmt.Errorf("bad metric name in %q", line)
	}
	m.Name = line[:i]
	// optional label block
	if i < len(line) && line[i] == '{' {
		end := strings.IndexByte(line[i:], '}')
		if end < 0 {
			return m, fmt.Errorf("unterminated labels in %q", line)
		}
		lbls, err := parseLabels(line[i+1 : i+end])
		if err != nil {
			return m, err
		}
		m.Labels = lbls
		i += end + 1
	}
	rest := strings.TrimSpace(line[i:])
	// An exemplar may follow the value/timestamp: " # {labels} value [ts]".
	// The sample's own label block was consumed above, so the first '#'
	// here can only open an exemplar.
	var exPart string
	if j := strings.IndexByte(rest, '#'); j >= 0 {
		exPart = strings.TrimSpace(rest[j+1:])
		rest = strings.TrimSpace(rest[:j])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return m, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return m, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	m.Value = v
	if len(fields) > 1 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return m, fmt.Errorf("bad timestamp %q", fields[1])
		}
		m.Timestamp = ts
	}
	if exPart != "" {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return m, fmt.Errorf("bad exemplar in %q: %w", line, err)
		}
		m.Exemplar = ex
	}
	return m, nil
}

// parseExemplar parses the part after "# ": `{labels} value [timestamp]`.
func parseExemplar(s string) (*Exemplar, error) {
	if len(s) == 0 || s[0] != '{' {
		return nil, fmt.Errorf("exemplar must start with '{' in %q", s)
	}
	end := strings.IndexByte(s, '}')
	if end < 0 {
		return nil, fmt.Errorf("unterminated exemplar labels in %q", s)
	}
	lbls, err := parseLabels(s[1:end])
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing exemplar value in %q", s)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q: %w", fields[0], err)
	}
	ex := &Exemplar{Labels: lbls, Value: v}
	if len(fields) > 1 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
		ex.Timestamp = ts
	}
	return ex, nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (labels.Labels, error) {
	var ls []labels.Label
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		name := strings.TrimSpace(s[start:i])
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var b strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					b.WriteByte('\\')
					b.WriteByte(s[i])
				}
			} else {
				b.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		ls = append(ls, labels.Label{Name: name, Value: b.String()})
	}
	sort.Slice(ls, func(a, b int) bool { return ls[a].Name < ls[b].Name })
	return labels.Labels(ls), nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// Samples flattens families into a single metric slice.
func Samples(fams []Family) []Metric {
	var out []Metric
	for _, f := range fams {
		out = append(out, f.Metrics...)
	}
	return out
}
