package kafka

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Dead-letter quarantine: a malformed record on any topic is diverted to
// the topic's ".dlq" sibling with its original payload and headers plus
// the quarantine metadata below, instead of aborting the consumer that
// tripped on it. The paper's pipeline must survive poison pills — one
// unparseable Redfish payload must not stall leak detection for the whole
// machine.
const (
	// DLQSuffix names a topic's dead-letter sibling.
	DLQSuffix = ".dlq"
	// HeaderDLQSource carries the topic the record was quarantined from.
	HeaderDLQSource = "dlq-source-topic"
	// HeaderDLQReason carries the error that condemned the record.
	HeaderDLQReason = "dlq-error"
	// HeaderDLQPartition and HeaderDLQOffset pin the record's original
	// coordinates for auditability.
	HeaderDLQPartition = "dlq-source-partition"
	HeaderDLQOffset    = "dlq-source-offset"
)

// DLQTopic returns topic's dead-letter topic name.
func DLQTopic(topic string) string { return topic + DLQSuffix }

// IsDLQTopic reports whether the name is a dead-letter topic.
func IsDLQTopic(topic string) bool { return strings.HasSuffix(topic, DLQSuffix) }

// Quarantine diverts a poisoned message to its topic's DLQ (created on
// first use, single partition — DLQ volume is small by construction). The
// original headers are preserved; source coordinates and the error reason
// ride as additional headers. Quarantining a record already on a DLQ is
// refused to prevent unbounded .dlq.dlq chains.
func Quarantine(b *Broker, m Message, reason error) (partition int, offset int64, err error) {
	if IsDLQTopic(m.Topic) {
		return 0, 0, fmt.Errorf("kafka: refusing to quarantine from DLQ topic %q", m.Topic)
	}
	dlq := DLQTopic(m.Topic)
	if err := b.CreateTopic(dlq, 1); err != nil && !errors.Is(err, ErrTopicExists) {
		return 0, 0, err
	}
	headers := make(map[string]string, len(m.Headers)+4)
	for k, v := range m.Headers {
		headers[k] = v
	}
	headers[HeaderDLQSource] = m.Topic
	headers[HeaderDLQPartition] = strconv.Itoa(m.Partition)
	headers[HeaderDLQOffset] = strconv.FormatInt(m.Offset, 10)
	if reason != nil {
		headers[HeaderDLQReason] = reason.Error()
	}
	ts := m.Timestamp
	if ts.IsZero() {
		ts = time.Now()
	}
	return b.ProduceMessage(Message{
		Topic: dlq, Key: m.Key, Value: m.Value, Timestamp: ts, Headers: headers,
	})
}

// DLQTopics lists the broker's dead-letter topics.
func (b *Broker) DLQTopics() []string {
	var out []string
	for _, t := range b.Topics() {
		if IsDLQTopic(t) {
			out = append(out, t)
		}
	}
	return out
}

// DLQRecords returns every retained record on topic's DLQ, oldest first.
// topic may be the source topic or the ".dlq" name itself.
func DLQRecords(b *Broker, topic string) ([]Message, error) {
	dlq := topic
	if !IsDLQTopic(dlq) {
		dlq = DLQTopic(dlq)
	}
	parts, err := b.Partitions(dlq)
	if err != nil {
		if errors.Is(err, ErrUnknownTopic) {
			return nil, nil // nothing ever quarantined
		}
		return nil, err
	}
	var out []Message
	for p := 0; p < parts; p++ {
		low, high, err := b.Watermarks(dlq, p)
		if err != nil {
			return nil, err
		}
		for low < high {
			msgs, err := b.Fetch(dlq, p, low, int(high-low))
			if err != nil {
				return nil, err
			}
			if len(msgs) == 0 {
				break
			}
			out = append(out, msgs...)
			low = msgs[len(msgs)-1].Offset + 1
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	return out, nil
}

// ReplayDLQ re-produces quarantined records onto their source topic with
// the quarantine headers stripped, and returns how many were replayed.
// Progress is tracked in the "dlq-replay" consumer group, so repeated
// calls replay each record once. This is the recovery hook for poison
// pills caused by transient schema bugs: fix the consumer, replay the
// queue, and the records flow through the normal path again.
func ReplayDLQ(b *Broker, topic string) (int, error) {
	dlq := topic
	if !IsDLQTopic(dlq) {
		dlq = DLQTopic(dlq)
	}
	parts, err := b.Partitions(dlq)
	if err != nil {
		if errors.Is(err, ErrUnknownTopic) {
			return 0, nil
		}
		return 0, err
	}
	const group = "dlq-replay"
	replayed := 0
	for p := 0; p < parts; p++ {
		off := b.Committed(group, dlq, p)
		low, high, err := b.Watermarks(dlq, p)
		if err != nil {
			return replayed, err
		}
		if off < low {
			off = low
		}
		for off < high {
			msgs, err := b.Fetch(dlq, p, off, int(high-off))
			if err != nil {
				return replayed, err
			}
			if len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				src := m.Headers[HeaderDLQSource]
				if src == "" {
					off = m.Offset + 1
					continue // not a quarantined record; skip
				}
				headers := make(map[string]string, len(m.Headers))
				for k, v := range m.Headers {
					switch k {
					case HeaderDLQSource, HeaderDLQReason, HeaderDLQPartition, HeaderDLQOffset:
					default:
						headers[k] = v
					}
				}
				if len(headers) == 0 {
					headers = nil
				}
				if _, _, err := b.ProduceMessage(Message{
					Topic: src, Key: m.Key, Value: m.Value, Timestamp: m.Timestamp, Headers: headers,
				}); err != nil {
					return replayed, err
				}
				replayed++
				off = m.Offset + 1
				b.Commit(group, dlq, p, off)
			}
		}
	}
	return replayed, nil
}

// FormatDLQ renders DLQ records in the logcli style — one line per record
// with timestamp, source coordinates and quarantine reason — the
// inspection path operators use before deciding to replay.
func FormatDLQ(msgs []Message) string {
	var sb strings.Builder
	for _, m := range msgs {
		fmt.Fprintf(&sb, "%s %s/%s@%s reason=%q value=%s\n",
			m.Timestamp.UTC().Format(time.RFC3339Nano),
			m.Headers[HeaderDLQSource],
			m.Headers[HeaderDLQPartition],
			m.Headers[HeaderDLQOffset],
			m.Headers[HeaderDLQReason],
			strconv.Quote(truncate(string(m.Value), 160)))
	}
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
