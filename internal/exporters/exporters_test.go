package exporters

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/promtext"
)

func scrape(t *testing.T, url string) []promtext.Family {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

func famByName(fams []promtext.Family, name string) *promtext.Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

func TestNodeExporter(t *testing.T) {
	e := NewNodeExporter("x1000c0s0b0n0", 1)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	fams := scrape(t, srv.URL+"/metrics")
	cpu := famByName(fams, "node_cpu_seconds_total")
	if cpu == nil || len(cpu.Metrics) != 4 {
		t.Fatalf("%+v", fams)
	}
	if cpu.Type != "counter" {
		t.Fatalf("type %q", cpu.Type)
	}
	first := cpu.Metrics[0].Value
	fams2 := scrape(t, srv.URL+"/metrics")
	cpu2 := famByName(fams2, "node_cpu_seconds_total")
	if cpu2.Metrics[0].Value <= first {
		t.Fatal("counter did not increase")
	}
	if famByName(fams, "node_load1") == nil || famByName(fams, "node_memory_used_bytes") == nil {
		t.Fatal("gauges missing")
	}
}

func TestKafkaExporter(t *testing.T) {
	broker := kafka.NewBroker()
	_ = broker.CreateTopic("cray-syslog", 2)
	for i := 0; i < 5; i++ {
		_, _, _ = broker.Produce("cray-syslog", nil, []byte("m"), time.Time{})
	}
	e := NewKafkaExporter(broker)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	fams := scrape(t, srv.URL+"/metrics")
	off := famByName(fams, "kafka_topic_partition_current_offset")
	if off == nil || len(off.Metrics) != 2 {
		t.Fatalf("%+v", fams)
	}
	sum := off.Metrics[0].Value + off.Metrics[1].Value
	if sum != 5 {
		t.Fatalf("offsets sum %v", sum)
	}
	tot := famByName(fams, "kafka_broker_messages_total")
	if tot == nil || tot.Metrics[0].Value != 5 {
		t.Fatalf("%+v", tot)
	}
}

func TestBlackboxExporterSuccessAndFailure(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}))
	defer up.Close()
	e := NewBlackboxExporter(nil)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	fams := scrape(t, srv.URL+"/probe?target="+up.URL)
	if famByName(fams, "probe_success").Metrics[0].Value != 1 {
		t.Fatalf("%+v", fams)
	}
	if famByName(fams, "probe_duration_seconds").Metrics[0].Value <= 0 {
		t.Fatal("zero duration")
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(500)
	}))
	downURL := down.URL
	down.Close()
	fams = scrape(t, srv.URL+"/probe?target="+downURL)
	if famByName(fams, "probe_success").Metrics[0].Value != 0 {
		t.Fatalf("%+v", fams)
	}

	resp, _ := http.Get(srv.URL + "/probe")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("missing target: status %d", resp.StatusCode)
	}
}

func TestArubaExporter(t *testing.T) {
	e := NewArubaExporter("mgmt-sw-1", 4, 9)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	fams := scrape(t, srv.URL+"/metrics")
	st := famByName(fams, "aruba_port_up")
	if st == nil || len(st.Metrics) != 4 {
		t.Fatalf("%+v", fams)
	}
	for _, m := range st.Metrics {
		if m.Value != 1 {
			t.Fatalf("port down initially: %+v", m)
		}
	}
	if err := e.SetPortStatus(2, false); err != nil {
		t.Fatal(err)
	}
	if err := e.SetPortStatus(99, false); err == nil {
		t.Fatal("bad port accepted")
	}
	fams = scrape(t, srv.URL+"/metrics")
	st = famByName(fams, "aruba_port_up")
	downs := 0
	for _, m := range st.Metrics {
		if m.Value == 0 {
			downs++
			if m.Labels.Get("port") != "2" {
				t.Fatalf("wrong port down: %+v", m)
			}
		}
	}
	if downs != 1 {
		t.Fatalf("downs = %d", downs)
	}
	// Counters only grow on up ports.
	rx := famByName(fams, "aruba_port_rx_bytes_total")
	if rx == nil || len(rx.Metrics) != 4 {
		t.Fatalf("%+v", rx)
	}
}

func TestKafkaExporterConsumerLag(t *testing.T) {
	broker := kafka.NewBroker()
	_ = broker.CreateTopic("cray-syslog", 1)
	for i := 0; i < 8; i++ {
		_, _, _ = broker.Produce("cray-syslog", nil, []byte("m"), time.Time{})
	}
	c := kafka.NewConsumer(broker, "omni", "m1", "cray-syslog")
	defer c.Close()
	if _, err := c.Poll(3, 0); err != nil {
		t.Fatal(err)
	}
	e := NewKafkaExporter(broker)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	fams := scrape(t, srv.URL+"/metrics")
	lag := famByName(fams, "kafka_consumergroup_lag")
	if lag == nil || len(lag.Metrics) != 1 {
		t.Fatalf("%+v", fams)
	}
	m := lag.Metrics[0]
	if m.Value != 5 || m.Labels.Get("consumergroup") != "omni" || m.Labels.Get("topic") != "cray-syslog" {
		t.Fatalf("%+v", m)
	}
}
