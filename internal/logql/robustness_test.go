package logql

import (
	"testing"
	"testing/quick"
)

// Property: ParseExpr never panics, whatever the input; it either parses
// or returns an error.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = ParseExpr(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutations of a valid query never panic the parser.
func TestPropertyMutatedQueryNeverPanics(t *testing.T) {
	base := `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity) > 0`
	f := func(pos uint16, b byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		mutated := []byte(base)
		mutated[int(pos)%len(mutated)] = b
		_, _ = ParseExpr(string(mutated))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the pattern parser handles arbitrary templates and lines
// without panicking.
func TestPropertyPatternNeverPanics(t *testing.T) {
	f := func(template, line string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		st, err := newPatternStage(template)
		if err != nil {
			return true
		}
		_, _, _ = st.Process(line, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: running any parsed log pipeline over arbitrary lines never
// panics.
func TestPropertyPipelineNeverPanics(t *testing.T) {
	queries := []string{
		`{a="b"} | json`,
		`{a="b"} | logfmt`,
		`{a="b"} | pattern "<x>:<y>"`,
		`{a="b"} |= "z" | line_format "{{.x}}"`,
	}
	exprs := make([]*LogExpr, 0, len(queries))
	for _, q := range queries {
		e, err := ParseLogExpr(q)
		if err != nil {
			t.Fatal(err)
		}
		exprs = append(exprs, e)
	}
	f := func(line string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		for _, e := range exprs {
			_, _, _ = runPipeline(e.Stages, line, nil)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
