// Package shastamon reproduces "Shasta Log Aggregation, Monitoring and
// Alerting in HPC Environments with Grafana Loki and ServiceNow"
// (Bautista, Sukhija, Deng — IEEE CLUSTER 2022) as a self-contained Go
// system: a Perlmutter-like Shasta simulator, a Kafka-style broker, the
// SMA Telemetry API, a Loki-style log store with LogQL, a
// VictoriaMetrics-style TSDB with a PromQL subset, the Loki Ruler and
// vmalert, a Prometheus-style Alertmanager, and Slack/ServiceNow
// terminals — wired together by internal/core into the paper's pipeline.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// figure-by-figure reproduction, and bench_test.go for the quantitative
// claims.
package shastamon
