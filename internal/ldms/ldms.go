// Package ldms simulates the Lightweight Distributed Metric Service
// samplers that feed Perlmutter's node-level metrics into the paper's
// pipeline ("LDMS metrics ... are stored in Kafka and available via the
// Telemetry API", Fig. 1). Each node runs samplers (meminfo, vmstat,
// procnetdev) producing JSON metric sets to the cray-ldms-metrics topic on
// a fixed cadence.
package ldms

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/labels"
	"shastamon/internal/tsdb"
)

// Topic is the Kafka topic LDMS metric sets are produced to.
const Topic = "cray-ldms-metrics"

// MetricSet is one sampler output for one node at one instant.
type MetricSet struct {
	Producer  string             `json:"producer"` // node xname
	Sampler   string             `json:"sampler"`  // meminfo, vmstat, procnetdev
	Timestamp time.Time          `json:"timestamp"`
	Metrics   map[string]float64 `json:"metrics"`
}

// Sampler generates deterministic metric sets for a set of nodes.
type Sampler struct {
	nodes []string

	mu    sync.Mutex
	rng   *rand.Rand
	state map[string]float64
}

// NewSampler seeds a sampler for the nodes.
func NewSampler(seed int64, nodes ...string) (*Sampler, error) {
	if len(nodes) == 0 {
		return nil, errors.New("ldms: at least one node required")
	}
	return &Sampler{
		nodes: nodes,
		rng:   rand.New(rand.NewSource(seed)),
		state: map[string]float64{},
	}, nil
}

func (s *Sampler) counter(key string, step float64) float64 {
	v := s.state[key] + s.rng.Float64()*step
	s.state[key] = v
	return v
}

func (s *Sampler) gauge(key string, base, jitter, lo, hi float64) float64 {
	v, ok := s.state[key]
	if !ok {
		v = base
	}
	v += s.rng.Float64()*2*jitter - jitter
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	s.state[key] = v
	return v
}

// Sample produces one metric set per (node, sampler) at ts.
func (s *Sampler) Sample(ts time.Time) []MetricSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MetricSet, 0, len(s.nodes)*3)
	for _, n := range s.nodes {
		out = append(out,
			MetricSet{Producer: n, Sampler: "meminfo", Timestamp: ts, Metrics: map[string]float64{
				"MemTotal":  512e9,
				"MemFree":   s.gauge("memfree/"+n, 300e9, 5e9, 10e9, 500e9),
				"Cached":    s.gauge("cached/"+n, 100e9, 2e9, 1e9, 400e9),
				"HugePages": s.gauge("huge/"+n, 1024, 16, 0, 8192),
			}},
			MetricSet{Producer: n, Sampler: "vmstat", Timestamp: ts, Metrics: map[string]float64{
				"pgfault":    s.counter("pgfault/"+n, 1e5),
				"pgmajfault": s.counter("pgmaj/"+n, 50),
				"ctxt":       s.counter("ctxt/"+n, 1e6),
			}},
			MetricSet{Producer: n, Sampler: "procnetdev", Timestamp: ts, Metrics: map[string]float64{
				"rx_bytes":   s.counter("rx/"+n, 5e9),
				"tx_bytes":   s.counter("tx/"+n, 5e9),
				"rx_dropped": s.counter("rxdrop/"+n, 2),
			}},
		)
	}
	return out
}

// Producer pushes metric sets to Kafka.
type Producer struct {
	sampler *Sampler
	broker  *kafka.Broker
}

// NewProducer creates the topic (tolerating reuse) and returns a producer.
func NewProducer(sampler *Sampler, broker *kafka.Broker, partitions int) (*Producer, error) {
	if partitions <= 0 {
		partitions = 4
	}
	if err := broker.CreateTopic(Topic, partitions); err != nil && !errors.Is(err, kafka.ErrTopicExists) {
		return nil, err
	}
	return &Producer{sampler: sampler, broker: broker}, nil
}

// ProduceOnce samples and produces all sets, returning the count.
func (p *Producer) ProduceOnce(ts time.Time) (int, error) {
	sets := p.sampler.Sample(ts)
	for _, set := range sets {
		data, err := json.Marshal(set)
		if err != nil {
			return 0, err
		}
		if _, _, err := p.broker.Produce(Topic, []byte(set.Producer), data, ts); err != nil {
			return 0, err
		}
	}
	return len(sets), nil
}

// Run produces on the interval until the context is cancelled.
func (p *Producer) Run(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-t.C:
			if _, err := p.ProduceOnce(now); err != nil {
				return err
			}
		}
	}
}

// ToSeries converts one raw Kafka record into TSDB appends: metric names
// are ldms_<sampler>_<metric>, labelled with the producer xname.
func ToSeries(raw []byte) (name []string, ls []labels.Labels, ms []int64, vals []float64, err error) {
	var set MetricSet
	if err := json.Unmarshal(raw, &set); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("ldms: bad record: %w", err)
	}
	base := labels.FromStrings("xname", set.Producer, "sampler", set.Sampler)
	t := set.Timestamp.UnixMilli()
	for metric, v := range set.Metrics {
		name = append(name, "ldms_"+set.Sampler+"_"+metric)
		ls = append(ls, base)
		ms = append(ms, t)
		vals = append(vals, v)
	}
	return name, ls, ms, vals, nil
}

// AppendTo decodes a record and appends all its series to the DB,
// returning how many samples landed.
func AppendTo(db *tsdb.DB, raw []byte) (int, error) {
	names, lss, mss, vals, err := ToSeries(raw)
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range names {
		if err := db.AppendMetric(names[i], lss[i], mss[i], vals[i]); err == nil {
			n++
		}
	}
	return n, nil
}
