package logql

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/stats"
)

// goldenStore builds a sharded store with a corpus wide enough that time
// splits, shard fan-out and the head window all carve it differently:
// eight apps on three clusters, entries every few seconds over two hours,
// with a logfmt value field for unwrap queries.
func goldenStore(t *testing.T, shards int) *loki.Store {
	t.Helper()
	limits := loki.DefaultLimits()
	limits.Shards = shards
	s := loki.NewStore(limits)
	for app := 0; app < 8; app++ {
		ls := labels.FromStrings(
			"app", fmt.Sprintf("a%d", app),
			"cluster", fmt.Sprintf("c%d", app%3),
		)
		var entries []loki.Entry
		for ts := int64(0); ts < 7200; ts += int64(3 + app) {
			entries = append(entries, loki.Entry{
				Timestamp: ts * 1e9,
				Line:      fmt.Sprintf("level=info v=%d msg=tick", (ts+int64(app)*7)%97),
			})
		}
		if err := s.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// farFuture keeps every split comfortably older than the freshness
// cutoff, so caching decisions never depend on the test's wall clock.
var farFuture = time.Unix(100_000, 0)

func matrixString(m Matrix) string { return fmt.Sprintf("%+v", m) }

// goldenQueries covers the shard-merge whitelist (sum/max/min, grouped
// and ungrouped) and expressions that must fall back to unsharded
// evaluation (rate's quotient, avg).
var goldenQueries = []string{
	`count_over_time({cluster="c0"}[5m])`,
	`sum(count_over_time({}[5m]))`,
	`bytes_over_time({app="a3"}[10m])`,
	`sum(bytes_over_time({}[2m]))`,
	`max_over_time({cluster="c1"} | logfmt | unwrap v [5m])`,
	`min_over_time({cluster="c1"} | logfmt | unwrap v [5m])`,
	`max(max_over_time({} | logfmt | unwrap v [7m]))`,
	`sum_over_time({cluster="c1"} | logfmt | unwrap v [5m])`,
	`sum(sum_over_time({} | logfmt | unwrap v [5m]))`,
	`rate({cluster="c0"}[5m])`,
	`avg(count_over_time({}[5m]))`,
	`sum(count_over_time({}[5m])) > 40`,
}

// goldenWindows exercises the alignment edge cases: a range that is not
// divisible by the step, an unaligned start, a window smaller than one
// split, and an instant-like single-step range.
var goldenWindows = []struct {
	name             string
	start, end, step int64 // seconds
}{
	{"aligned-hour", 0, 3600, 60},
	{"range-not-divisible-by-step", 0, 3601, 55},
	{"unaligned-start", 37, 3598, 55},
	{"sub-split-window", 130, 250, 40},
	{"single-instant", 300, 300, 60},
}

// TestFrontendGoldenEquality proves split + sharded + cached evaluation
// is byte-identical to the monolithic pass, cold and warm.
func TestFrontendGoldenEquality(t *testing.T) {
	store := goldenStore(t, 4)
	mono := NewEngine(store)
	split := NewEngine(store)
	split.SetFrontend(frontend.New(frontend.Config{
		SplitInterval: 10 * time.Minute,
		Now:           func() time.Time { return farFuture },
	}))
	for _, q := range goldenQueries {
		for _, w := range goldenWindows {
			name := fmt.Sprintf("%s/%s", q, w.name)
			want, err := mono.QueryRange(q, w.start*1e9, w.end*1e9, time.Duration(w.step)*time.Second)
			if err != nil {
				t.Fatalf("%s: monolithic: %v", name, err)
			}
			cold, err := split.QueryRange(q, w.start*1e9, w.end*1e9, time.Duration(w.step)*time.Second)
			if err != nil {
				t.Fatalf("%s: cold: %v", name, err)
			}
			if matrixString(want) != matrixString(cold) {
				t.Errorf("%s: cold result differs\nmono:  %s\nsplit: %s", name, matrixString(want), matrixString(cold))
				continue
			}
			ctx, sc := stats.NewContext(context.Background())
			warm, err := split.QueryRangeContext(ctx, q, w.start*1e9, w.end*1e9, time.Duration(w.step)*time.Second)
			if err != nil {
				t.Fatalf("%s: warm: %v", name, err)
			}
			if matrixString(want) != matrixString(warm) {
				t.Errorf("%s: warm result differs\nmono:  %s\nsplit: %s", name, matrixString(want), matrixString(warm))
			}
			if fe := sc.Snapshot().Frontend; fe.ResultCacheHits == 0 {
				t.Errorf("%s: warm run hit the cache 0 times: %+v", name, fe)
			}
		}
	}
}

// TestShardMergeWhitelist pins the fan-out decision per operation: the
// exact-merge set (including sum_over_time) must shard, and the
// order-sensitive quotients and averages must not.
func TestShardMergeWhitelist(t *testing.T) {
	cases := map[string]string{
		`sum_over_time({cluster="c1"} | logfmt | unwrap v [5m])`: "sum",
		`sum(sum_over_time({} | logfmt | unwrap v [5m]))`:        "sum",
		`count_over_time({cluster="c0"}[5m])`:                    "sum",
		`max(max_over_time({} | logfmt | unwrap v [7m]))`:        "max",
		`avg_over_time({cluster="c1"} | logfmt | unwrap v [5m])`: "",
		`avg(sum_over_time({} | logfmt | unwrap v [5m]))`:        "",
		`rate({cluster="c0"}[5m])`:                               "",
	}
	for q, wantOp := range cases {
		expr, err := ParseMetricExpr(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		op, ok := shardMergeOp(expr)
		if op != wantOp || ok != (wantOp != "") {
			t.Errorf("shardMergeOp(%s) = (%q, %v), want %q", q, op, ok, wantOp)
		}
	}
}

// TestFrontendGoldenMutableHead pins the clock so the freshness cutoff
// lands mid-range: head splits must re-evaluate (never cached) and the
// result must still match the monolithic pass exactly.
func TestFrontendGoldenMutableHead(t *testing.T) {
	store := goldenStore(t, 4)
	mono := NewEngine(store)
	split := NewEngine(store)
	f := frontend.New(frontend.Config{
		SplitInterval:  10 * time.Minute,
		CacheFreshness: time.Minute,
		// Cutoff = 1800s: the second half of the hour window is head.
		Now: func() time.Time { return time.Unix(1860, 0) },
	})
	split.SetFrontend(f)
	const q = `sum(count_over_time({}[5m]))`
	want, err := mono.QueryRange(q, 0, 3600e9, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := split.QueryRange(q, 0, 3600e9, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if matrixString(want) != matrixString(got) {
			t.Fatalf("run %d differs from monolithic\nmono:  %s\nsplit: %s", i, matrixString(want), matrixString(got))
		}
	}
	// Only the pre-cutoff splits may be resident.
	if st := f.CacheStats(); st.Entries == 0 || st.Entries > 3 {
		t.Fatalf("expected only the pre-head splits cached, got %+v", st)
	}
}

// TestFrontendGoldenRetentionEviction deletes history mid-flight: after
// retention runs, the frontend must serve exactly what a monolithic pass
// over the mutated store serves — never resurrect cached pre-deletion
// data.
func TestFrontendGoldenRetentionEviction(t *testing.T) {
	store := goldenStore(t, 4)
	mono := NewEngine(store)
	split := NewEngine(store)
	f := frontend.New(frontend.Config{
		SplitInterval: 10 * time.Minute,
		Now:           func() time.Time { return farFuture },
	})
	split.SetFrontend(f)
	const q = `sum(count_over_time({}[5m]))`
	// Warm the cache over the full window.
	if _, err := split.QueryRange(q, 0, 3600e9, time.Minute); err != nil {
		t.Fatal(err)
	}
	// Retention deletes the first half hour, then invalidates the cache —
	// the same order omni's EnforceRetention runs them in.
	cutoff := time.Unix(1800, 0)
	store.DeleteBefore(cutoff.UnixNano())
	if dropped := f.InvalidateBefore(cutoff); dropped == 0 {
		t.Fatal("retention invalidated no cached splits")
	}
	want, err := mono.QueryRange(q, 0, 3600e9, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	got, err := split.QueryRange(q, 0, 3600e9, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if matrixString(want) != matrixString(got) {
		t.Fatalf("post-retention result resurrects cached data\nmono:  %s\nsplit: %s", matrixString(want), matrixString(got))
	}
}

// TestFrontendConcurrentRefreshSoak hammers one frontend with sliding
// dashboard-style refreshes from many goroutines — the -race soak. Every
// response is checked against a monolithic evaluation of the same window.
func TestFrontendConcurrentRefreshSoak(t *testing.T) {
	store := goldenStore(t, 4)
	mono := NewEngine(store)
	split := NewEngine(store)
	f := frontend.New(frontend.Config{
		SplitInterval: 5 * time.Minute,
		CacheBytes:    16 << 10, // small enough to force evictions mid-soak
		Now:           func() time.Time { return farFuture },
	})
	split.SetFrontend(f)
	queries := []string{
		`sum(count_over_time({}[5m]))`,
		`count_over_time({cluster="c0"}[5m])`,
		`max_over_time({cluster="c1"} | logfmt | unwrap v [5m])`,
	}
	const refreshers, iters = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, refreshers)
	for g := 0; g < refreshers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				// The window slides forward by a step each refresh, the
				// dashboard pattern the extension-of-range reuse targets.
				start := int64(g*30+i*60) * 1e9
				end := start + 1800e9
				want, err := mono.QueryRange(q, start, end, time.Minute)
				if err != nil {
					errs <- err
					return
				}
				got, err := split.QueryRange(q, start, end, time.Minute)
				if err != nil {
					errs <- err
					return
				}
				if matrixString(want) != matrixString(got) {
					errs <- fmt.Errorf("refresher %d iter %d (%s): split result differs", g, i, q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
