package logql

import (
	"context"
	"fmt"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

// SetFrontend routes range queries through a query frontend (splitting,
// shard fan-out, results caching, admission control). Call during
// setup, not concurrently with queries.
func (e *Engine) SetFrontend(f *frontend.Frontend) { e.frontend = f }

// Frontend returns the attached query frontend, nil when unset.
func (e *Engine) Frontend() *frontend.Frontend { return e.frontend }

// maxLookback is the furthest any sub-evaluation of expr reads before
// its step timestamp: the widest range-aggregation interval in the tree.
func maxLookback(expr MetricExpr) time.Duration {
	switch ex := expr.(type) {
	case *RangeAggExpr:
		return ex.Interval
	case *VectorAggExpr:
		return maxLookback(ex.Inner)
	case *CmpExpr:
		return maxLookback(ex.Inner)
	}
	return 0
}

// shardMergeOp decides whether expr may be evaluated independently per
// store shard and merged pointwise, and with which operation. The
// whitelist is deliberately exact-arithmetic only: counts and byte
// totals are integers (exact float64 addition in any order) and min/max
// are order-independent, so sharded results stay byte-identical to
// monolithic evaluation. rate/bytes_rate are excluded — summing partial
// quotients rounds differently from dividing the total — as are avg,
// count-of-groups, topk and cmp-filtered expressions, which do not
// distribute over a partition of the streams at all.
func shardMergeOp(expr MetricExpr) (string, bool) {
	switch ex := expr.(type) {
	case *RangeAggExpr:
		// A group's entries may span shards; identical label sets merge
		// across partial results with the op below.
		switch ex.Op {
		case OpCountOverTime, OpBytesOverTime:
			return "sum", true
		case OpSumOverTime:
			// sum_over_time sums the unwrapped values themselves. Partition
			// summation reorders float additions, but every shard sums its
			// own streams in full and a stream never spans shards, so the
			// per-shard partials are the same numbers a monolithic
			// evaluation groups by stream — merging them is exact for the
			// integer-valued unwraps dashboards use and differs only by the
			// usual float association elsewhere, the same tolerance the
			// golden-equality tests pin.
			return "sum", true
		case OpMaxOverTime:
			return "max", true
		case OpMinOverTime:
			return "min", true
		}
	case *VectorAggExpr:
		inner, ok := ex.Inner.(*RangeAggExpr)
		if !ok {
			return "", false
		}
		switch ex.Op {
		case "sum":
			if inner.Op == OpCountOverTime || inner.Op == OpBytesOverTime || inner.Op == OpSumOverTime {
				return "sum", true
			}
		case "max":
			if inner.Op == OpMaxOverTime {
				return "max", true
			}
		case "min":
			if inner.Op == OpMinOverTime {
				return "min", true
			}
		}
	}
	return "", false
}

// withShardSelector returns expr with a __shard__ matcher appended to
// its stream selector, restricting evaluation to one store shard. The
// input tree is shared across concurrent sub-queries, so the rewrite
// copies the nodes it changes instead of mutating.
func withShardSelector(expr MetricExpr, shard, of int) MetricExpr {
	switch ex := expr.(type) {
	case *RangeAggExpr:
		m, err := labels.NewMatcher(labels.MatchEqual, loki.ShardLabel, fmt.Sprintf("%d_of_%d", shard, of))
		if err != nil {
			return expr
		}
		lg := *ex.Log
		lg.Selector = append(append(labels.Selector{}, ex.Log.Selector...), m)
		cp := *ex
		cp.Log = &lg
		return &cp
	case *VectorAggExpr:
		cp := *ex
		cp.Inner = withShardSelector(ex.Inner, shard, of)
		return &cp
	}
	return expr
}

// shardPlan inspects the querier and the expression: fan out only when
// the store is sharded, the frontend allows it and the expression
// merges exactly.
func (e *Engine) shardPlan(expr MetricExpr) (int, string) {
	if e.frontend == nil || !e.frontend.ShardFanout() {
		return 1, ""
	}
	sh, ok := e.q.(interface{ Shards() int })
	if !ok || sh.Shards() <= 1 {
		return 1, ""
	}
	op, ok := shardMergeOp(expr)
	if !ok {
		return 1, ""
	}
	return sh.Shards(), op
}

func toFrontendMatrix(m Matrix) frontend.Matrix {
	out := make(frontend.Matrix, len(m))
	for i, s := range m {
		pts := make([]frontend.Point, len(s.Points))
		for j, p := range s.Points {
			pts[j] = frontend.Point{T: p.T, V: p.V}
		}
		out[i] = frontend.Series{Labels: s.Labels, Points: pts}
	}
	return out
}

// fromFrontendMatrix copies the frontend result into engine types. The
// copy matters: frontend matrices may alias cached storage shared with
// concurrent queries.
func fromFrontendMatrix(fm frontend.Matrix) Matrix {
	out := make(Matrix, 0, len(fm))
	for _, s := range fm {
		pts := make([]Point, len(s.Points))
		for j, p := range s.Points {
			pts[j] = Point{T: p.T, V: p.V}
		}
		out = append(out, Series{Labels: s.Labels, Points: pts})
	}
	return out
}

// rangeViaFrontend hands the range query to the frontend: it splits,
// consults the results cache, fans shardable expressions across store
// shards, and calls back into rangeDirect for whatever must actually
// evaluate.
func (e *Engine) rangeViaFrontend(ctx context.Context, expr MetricExpr, start, end int64, step time.Duration) (Matrix, error) {
	shards, mergeOp := e.shardPlan(expr)
	fm, err := e.frontend.QueryRange(ctx, frontend.Request{
		Engine:   "logql",
		Query:    expr.String(),
		Start:    start,
		End:      end,
		Step:     int64(step),
		Unit:     time.Nanosecond,
		Lookback: int64(maxLookback(expr)),
		Shards:   shards,
		MergeOp:  mergeOp,
		Eval: func(ctx context.Context, s, en int64, shard int) (frontend.Matrix, error) {
			ex := expr
			if shard >= 0 {
				ex = withShardSelector(expr, shard, shards)
			}
			m, err := e.rangeDirect(ctx, ex, s, en, step)
			if err != nil {
				return nil, err
			}
			return toFrontendMatrix(m), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return fromFrontendMatrix(fm), nil
}
