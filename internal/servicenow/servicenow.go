// Package servicenow implements the subset of ServiceNow NERSC uses (paper
// §III.D): the event management module — events are correlated and grouped
// into SN alerts which trigger automated response actions — the incident
// management module, and a CMDB holding configuration items (CIs) for
// Perlmutter assets. An HTTP façade mimics the SN event collector API, and
// a Notifier adapts Alertmanager notifications into SN events.
package servicenow

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Severity follows the SN event scale: 1 critical, 2 major, 3 minor,
// 4 warning, 5 OK/clear.
const (
	SeverityCritical = 1
	SeverityMajor    = 2
	SeverityMinor    = 3
	SeverityWarning  = 4
	SeverityClear    = 5
)

// Event is one monitoring event posted to the event collector.
type Event struct {
	Source         string            `json:"source"`
	Node           string            `json:"node"`
	Type           string            `json:"type"`
	Resource       string            `json:"resource,omitempty"`
	Severity       int               `json:"severity"`
	Description    string            `json:"description"`
	AdditionalInfo map[string]string `json:"additional_info,omitempty"`
	TimeOfEvent    time.Time         `json:"time_of_event"`
}

// key is the correlation identity: events sharing it group into one alert.
func (e Event) key() string { return e.Source + "\x00" + e.Node + "\x00" + e.Type }

// Alert is a ServiceNow alert: the correlation of one or more events.
type Alert struct {
	Number     string    `json:"number"`
	Source     string    `json:"source"`
	Node       string    `json:"node"`
	Type       string    `json:"type"`
	Severity   int       `json:"severity"`
	EventCount int       `json:"event_count"`
	State      string    `json:"state"` // Open, Closed
	CI         string    `json:"ci,omitempty"`
	Incident   string    `json:"incident,omitempty"`
	UpdatedAt  time.Time `json:"updated_at"`
}

// Incident states, following the SN incident lifecycle.
const (
	IncidentNew        = "New"
	IncidentInProgress = "In Progress"
	IncidentResolved   = "Resolved"
	IncidentClosed     = "Closed"
)

// Incident is an SN incident record.
type Incident struct {
	Number           string    `json:"number"`
	ShortDescription string    `json:"short_description"`
	Description      string    `json:"description"`
	Priority         int       `json:"priority"` // 1..5, mapped from severity
	State            string    `json:"state"`
	CI               string    `json:"ci,omitempty"`
	OpenedAt         time.Time `json:"opened_at"`
	ResolvedAt       time.Time `json:"resolved_at,omitempty"`
	WorkNotes        []string  `json:"work_notes,omitempty"`
}

// CI is a CMDB configuration item.
type CI struct {
	Name       string            `json:"name"`  // xname or hostname
	Class      string            `json:"class"` // cmdb_ci_computer, cmdb_ci_netgear, ...
	Attributes map[string]string `json:"attributes,omitempty"`
}

// Config tunes the instance.
type Config struct {
	// IncidentSeverityThreshold: alerts at this severity or more severe
	// (numerically <=) auto-create an incident. Default 2 (major).
	IncidentSeverityThreshold int
	// Now is injectable for tests.
	Now func() time.Time
}

// Instance is an in-process ServiceNow.
type Instance struct {
	threshold int
	now       func() time.Time

	mu        sync.Mutex
	events    []Event
	alerts    map[string]*Alert // by correlation key
	incidents map[string]*Incident
	cmdb      map[string]CI
	deps      map[string][]string // CI -> CIs that depend on it
	alertSeq  int
	incSeq    int
}

// NewInstance returns an empty instance.
func NewInstance(cfg Config) *Instance {
	if cfg.IncidentSeverityThreshold == 0 {
		cfg.IncidentSeverityThreshold = SeverityMajor
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Instance{
		threshold: cfg.IncidentSeverityThreshold,
		now:       cfg.Now,
		alerts:    map[string]*Alert{},
		incidents: map[string]*Incident{},
		cmdb:      map[string]CI{},
	}
}

// LoadCMDB registers configuration items; alerts bind to the CI matching
// their node ("using event management, CMDB and CI still needed to be
// configured using Perlmutter assets").
func (sn *Instance) LoadCMDB(cis ...CI) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	for _, ci := range cis {
		sn.cmdb[ci.Name] = ci
	}
}

// CMDBLookup returns the CI for a name.
func (sn *Instance) CMDBLookup(name string) (CI, bool) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	ci, ok := sn.cmdb[name]
	return ci, ok
}

// PostEvent ingests one event: it is correlated into an alert; severe
// alerts open incidents; clear events close the alert and resolve its
// incident. It returns the updated alert.
func (sn *Instance) PostEvent(e Event) (Alert, error) {
	if e.Source == "" || e.Type == "" {
		return Alert{}, fmt.Errorf("servicenow: event requires source and type: %+v", e)
	}
	if e.Severity < SeverityCritical || e.Severity > SeverityClear {
		return Alert{}, fmt.Errorf("servicenow: severity %d out of range", e.Severity)
	}
	now := sn.now()
	if e.TimeOfEvent.IsZero() {
		e.TimeOfEvent = now
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.events = append(sn.events, e)

	k := e.key()
	a, ok := sn.alerts[k]
	if !ok {
		sn.alertSeq++
		a = &Alert{
			Number: fmt.Sprintf("Alert%07d", sn.alertSeq),
			Source: e.Source, Node: e.Node, Type: e.Type,
			Severity: e.Severity, State: "Open",
		}
		if _, found := sn.cmdb[e.Node]; found {
			a.CI = e.Node
		}
		sn.alerts[k] = a
	}
	a.EventCount++
	a.UpdatedAt = now

	if e.Severity == SeverityClear {
		a.State = "Closed"
		a.Severity = SeverityClear
		if inc, found := sn.incidents[a.Incident]; found && inc.State != IncidentClosed {
			inc.State = IncidentResolved
			inc.ResolvedAt = now
			inc.WorkNotes = append(inc.WorkNotes, fmt.Sprintf("Auto-resolved by clear event from %s at %s", e.Source, now.UTC().Format(time.RFC3339)))
		}
		return *a, nil
	}

	a.State = "Open"
	if e.Severity < a.Severity {
		a.Severity = e.Severity
	}
	if a.Severity <= sn.threshold && a.Incident == "" {
		sn.incSeq++
		inc := &Incident{
			Number:           fmt.Sprintf("INC%07d", sn.incSeq),
			ShortDescription: fmt.Sprintf("[%s] %s on %s", severityName(a.Severity), e.Type, e.Node),
			Description:      e.Description,
			Priority:         a.Severity,
			State:            IncidentNew,
			CI:               a.CI,
			OpenedAt:         now,
		}
		if a.CI != "" {
			if impacted := sn.impactedLocked(a.CI); len(impacted) > 0 {
				inc.WorkNotes = append(inc.WorkNotes, fmt.Sprintf(
					"Service impact: %d dependent CI(s) affected (first: %s)", len(impacted), impacted[0]))
			}
		}
		sn.incidents[inc.Number] = inc
		a.Incident = inc.Number
	}
	return *a, nil
}

// impactedLocked is ImpactedCIs with sn.mu already held.
func (sn *Instance) impactedLocked(name string) []string {
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		for _, d := range sn.deps[n] {
			if !seen[d] {
				seen[d] = true
				walk(d)
			}
		}
	}
	walk(name)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func severityName(s int) string {
	switch s {
	case SeverityCritical:
		return "Critical"
	case SeverityMajor:
		return "Major"
	case SeverityMinor:
		return "Minor"
	case SeverityWarning:
		return "Warning"
	}
	return "Clear"
}

// Alerts lists alerts sorted by number.
func (sn *Instance) Alerts() []Alert {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	out := make([]Alert, 0, len(sn.alerts))
	for _, a := range sn.alerts {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Incidents lists incidents sorted by number.
func (sn *Instance) Incidents() []Incident {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	out := make([]Incident, 0, len(sn.incidents))
	for _, inc := range sn.incidents {
		out = append(out, *inc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Events returns the raw event log.
func (sn *Instance) Events() []Event {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return append([]Event(nil), sn.events...)
}

// UpdateIncident transitions an incident's state with a work note,
// enforcing the lifecycle order New -> In Progress -> Resolved -> Closed
// (resolution may be skipped straight from New).
func (sn *Instance) UpdateIncident(number, state, note string) error {
	order := map[string]int{IncidentNew: 0, IncidentInProgress: 1, IncidentResolved: 2, IncidentClosed: 3}
	rank, ok := order[state]
	if !ok {
		return fmt.Errorf("servicenow: unknown state %q", state)
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	inc, found := sn.incidents[number]
	if !found {
		return fmt.Errorf("servicenow: unknown incident %q", number)
	}
	if rank <= order[inc.State] {
		return fmt.Errorf("servicenow: cannot move %s from %s to %s", number, inc.State, state)
	}
	inc.State = state
	if state == IncidentResolved {
		inc.ResolvedAt = sn.now()
	}
	if note != "" {
		inc.WorkNotes = append(inc.WorkNotes, note)
	}
	return nil
}

// Handler serves the event collector and read APIs:
//
//	POST /api/em/events     one Event as JSON
//	GET  /api/em/alerts
//	GET  /api/em/incidents
func (sn *Instance) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/em/events", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var e Event
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := sn.PostEvent(e)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(a)
	})
	mux.HandleFunc("/api/em/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sn.Alerts())
	})
	mux.HandleFunc("/api/em/incidents", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(sn.Incidents())
	})
	return mux
}
