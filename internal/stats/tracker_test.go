package stats

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/obs"
)

func TestTrackerActiveAndKillEndpoint(t *testing.T) {
	tr := NewTracker(obs.NewRegistry(), Config{})
	ctx, finish := tr.Start(context.Background(), "logql", `{app="x"}`)

	h := tr.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	var live struct {
		Queries []ActiveQuery `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &live); err != nil {
		t.Fatal(err)
	}
	if len(live.Queries) != 1 || live.Queries[0].Query != `{app="x"}` || live.Queries[0].Engine != "logql" {
		t.Fatalf("active: %+v", live.Queries)
	}
	id := live.Queries[0].ID

	// Kill requires POST.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries/"+id+"/kill", nil))
	if rec.Code != 405 {
		t.Fatalf("GET kill = %d, want 405", rec.Code)
	}
	// Unknown ID is a 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/queries/zzz/kill", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown kill = %d, want 404", rec.Code)
	}
	// The real kill cancels the query context with ErrKilled.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/queries/"+id+"/kill", nil))
	if rec.Code != 200 {
		t.Fatalf("kill = %d body %s", rec.Code, rec.Body)
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("kill did not cancel the query context")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrKilled) {
		t.Fatalf("cause = %v, want ErrKilled", cause)
	}

	finish(context.Cause(ctx))
	// The killed query lands in the slowlog with reason "killed".
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	var slow struct {
		Slowlog []SlowEntry `json:"slowlog"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Slowlog) != 1 || slow.Slowlog[0].Reason != "killed" {
		t.Fatalf("slowlog: %+v", slow.Slowlog)
	}
	if tr.Kill(id) {
		t.Fatal("finished query still killable")
	}
}

func TestTrackerTimeout(t *testing.T) {
	tr := NewTracker(obs.NewRegistry(), Config{Timeout: 5 * time.Millisecond})
	ctx, finish := tr.Start(context.Background(), "promql", "sum(up)")
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout never fired")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrQueryTimeout) {
		t.Fatalf("cause = %v, want ErrQueryTimeout", cause)
	}
	finish(context.Cause(ctx))
	log := tr.SlowLog()
	if len(log) != 1 || log[0].Reason != "timeout" {
		t.Fatalf("slowlog: %+v", log)
	}
}

func TestSlowlogRingEviction(t *testing.T) {
	tr := NewTracker(obs.NewRegistry(), Config{SlowLogSize: 3, SlowThreshold: time.Nanosecond})
	for i := 0; i < 5; i++ {
		_, finish := tr.Start(context.Background(), "logql", fmt.Sprintf("query-%d", i))
		time.Sleep(time.Microsecond) // every query crosses the 1ns threshold
		finish(nil)
	}
	log := tr.SlowLog()
	if len(log) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(log))
	}
	// Newest first; the two oldest (query-0, query-1) were evicted.
	for i, want := range []string{"query-4", "query-3", "query-2"} {
		if log[i].Query != want {
			t.Fatalf("log[%d] = %q, want %q (full: %+v)", i, log[i].Query, want, log)
		}
		if log[i].Reason != "slow" {
			t.Fatalf("reason = %q, want slow", log[i].Reason)
		}
	}
}

func TestTrackerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewTracker(reg, Config{SlowThreshold: time.Nanosecond})
	_, finish := tr.Start(context.Background(), "logql", "ok")
	FromContext(nil).MarkExec() // no-op; exercises nil path
	time.Sleep(time.Microsecond)
	finish(nil)
	_, finish = tr.Start(context.Background(), "logql", "breached")
	finish(ErrMaxBytesScanned)

	fams := reg.Gather()
	if got := obs.Value(fams, obs.Namespace+"query_duration_seconds_count", "engine", "logql"); got != 2 {
		t.Fatalf("duration count = %v, want 2", got)
	}
	if got := obs.Value(fams, obs.Namespace+"query_limit_breached_total", "reason", "bytes"); got != 1 {
		t.Fatalf("limit breached = %v, want 1", got)
	}
	if got := obs.Value(fams, obs.Namespace+"query_slow_total", "engine", "logql"); got != 2 {
		t.Fatalf("slow total = %v, want 2", got)
	}
	if got := obs.Value(fams, obs.Namespace+"queries_active"); got != 0 {
		t.Fatalf("active = %v, want 0", got)
	}
}

func TestNilTrackerStart(t *testing.T) {
	var tr *Tracker
	ctx, finish := tr.Start(context.Background(), "logql", "x")
	sc := FromContext(ctx)
	if sc == nil {
		t.Fatal("nil tracker lost the stats context")
	}
	(&Worker{BytesProcessed: 7}).FlushTo(sc)
	if snap := finish(nil); snap.Summary.TotalBytesProcessed != 7 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if tr.Kill("q1") || tr.Active() != nil || tr.SlowLog() != nil {
		t.Fatal("nil tracker invented state")
	}
}

func TestTrackerSpansReplayedOnTracer(t *testing.T) {
	tr := NewTracker(obs.NewRegistry(), Config{})
	tracer := obs.NewTracer(16)
	tr.SetTracer(tracer)
	ctx, finish := tr.Start(context.Background(), "logql", `{app="x"}`)
	sc := FromContext(ctx)
	now := time.Now()
	sc.AddSpan("loki.select", now, now.Add(time.Millisecond), "1 streams over 1 shards")
	tid := obs.TraceIDFrom(ctx)
	if tid == "" {
		t.Fatal("no trace id on the query context")
	}
	finish(nil)
	rec := httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+tid+"?format=waterfall", nil))
	body := rec.Body.String()
	for _, want := range []string{"loki.select", "query.total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, body)
		}
	}
}
