package servicenow

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"shastamon/internal/alertmanager"
)

// Notifier converts Alertmanager notifications into ServiceNow events and
// posts them to an instance's event collector ("alerts are transformed
// into ServiceNow Events, which are correlated and grouped into SN Alerts,
// which then trigger automated response actions").
type Notifier struct {
	name   string
	url    string // base URL of the instance API
	client *http.Client
}

// NewNotifier returns an alertmanager.Receiver posting to the instance at
// baseURL.
func NewNotifier(name, baseURL string, client *http.Client) *Notifier {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Notifier{name: name, url: baseURL, client: client}
}

// Name implements alertmanager.Receiver.
func (n *Notifier) Name() string { return n.name }

// Notify posts one SN event per alert in the notification.
func (n *Notifier) Notify(notification alertmanager.Notification) error {
	for _, a := range notification.Alerts {
		e := EventFromAlert(a)
		body, err := json.Marshal(e)
		if err != nil {
			return err
		}
		resp, err := n.client.Post(n.url+"/api/em/events", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("servicenow: post event: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("servicenow: event collector status %d", resp.StatusCode)
		}
	}
	return nil
}

// EventFromAlert maps an Alertmanager alert to an SN event. The node is
// taken from the xname/Context/instance labels in that order; resolved
// alerts become clear events.
func EventFromAlert(a alertmanager.Alert) Event {
	node := a.Labels.Get("xname")
	if node == "" {
		node = a.Labels.Get("Context")
	}
	if node == "" {
		node = a.Labels.Get("hostname")
	}
	if node == "" {
		node = a.Labels.Get("instance")
	}
	sev := severityFromLabel(a.Labels.Get("severity"))
	if !a.EndsAt.IsZero() {
		sev = SeverityClear
	}
	desc := a.Annotations["summary"]
	if desc == "" {
		desc = a.Labels.String()
	}
	return Event{
		Source:         "alertmanager",
		Node:           node,
		Type:           a.Name(),
		Severity:       sev,
		Description:    desc,
		AdditionalInfo: a.Labels.Map(),
		TimeOfEvent:    a.StartsAt,
	}
}

func severityFromLabel(s string) int {
	switch strings.ToLower(s) {
	case "critical":
		return SeverityCritical
	case "major", "error":
		return SeverityMajor
	case "minor":
		return SeverityMinor
	case "warning", "warn":
		return SeverityWarning
	}
	return SeverityWarning
}
