package vmagent

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"shastamon/internal/obs"
	"shastamon/internal/tsdb"
)

// TestStalenessTracksDeadTarget: a healthy target reports 0 staleness;
// once its exporter starts failing the gauge grows with every attempted
// scrape (on the scrape-timestamp clock), and recovery snaps it back to 0.
func TestStalenessTracksDeadTarget(t *testing.T) {
	var broken atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("m 1\n"))
	}))
	defer srv.Close()

	agent, err := New(tsdb.New(), nil, ScrapeConfig{JobName: "j", Targets: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	agent.SetBreakerOpenFor(time.Hour) // once open, stays open for the test

	t0 := time.Unix(1000, 0)
	if err := agent.ScrapeOnce(t0); err != nil {
		t.Fatal(err)
	}
	if s := agent.StalenessSeconds()[srv.URL]; s != 0 {
		t.Fatalf("healthy staleness = %v, want 0", s)
	}

	broken.Store(true)
	for i := 1; i <= 4; i++ { // failures trip the breaker at 3; later scrapes are skipped
		agent.ScrapeOnce(t0.Add(time.Duration(i) * 30 * time.Second))
	}
	// Last attempt at t0+120s, last success at t0: 120s stale — and the
	// breaker-skipped attempt still advanced the clock.
	if s := agent.StalenessSeconds()[srv.URL]; s != 120 {
		t.Fatalf("dead staleness = %v, want 120", s)
	}
	st := agent.Stats()
	if st.Skipped == 0 {
		t.Fatalf("breaker never skipped a scrape: %+v", st)
	}

	// The staleness gauge family reflects the same number.
	fams := agent.Metrics().Gather()
	if got := obs.Value(fams, "shastamon_scrape_staleness_seconds", "target", srv.URL); got != 120 {
		t.Fatalf("staleness gauge = %v, want 120", got)
	}
	if got := obs.Value(fams, "shastamon_vmagent_scrapes_skipped_total"); got != float64(st.Skipped) {
		t.Fatalf("skipped gauge = %v, want %d", got, st.Skipped)
	}

	// Recovery: fix the exporter and wait out the breaker window.
	broken.Store(false)
	agent.SetBreakerOpenFor(time.Millisecond)
	if err := agent.ScrapeOnce(t0.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if s := agent.StalenessSeconds()[srv.URL]; s != 0 {
		t.Fatalf("recovered staleness = %v, want 0", s)
	}
}

// TestStalenessNeverSucceeded: a target that has never had a successful
// scrape is stale since its first attempt.
func TestStalenessNeverSucceeded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()
	agent, err := New(tsdb.New(), nil, ScrapeConfig{JobName: "j", Targets: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(2000, 0)
	agent.ScrapeOnce(t0)
	agent.ScrapeOnce(t0.Add(45 * time.Second))
	if s := agent.StalenessSeconds()[srv.URL]; s != 45 {
		t.Fatalf("never-succeeded staleness = %v, want 45", s)
	}
}
