// Package core is the paper's contribution: the framework wiring Shasta
// telemetry, Kafka, the Telemetry API, Loki, VictoriaMetrics, the Ruler,
// vmalert, Alertmanager, Slack and ServiceNow into one log aggregation,
// monitoring and alerting pipeline. This file implements the data
// transformations the paper's "K3s python pods" perform between the
// Telemetry API and the stores.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"shastamon/internal/hms"
	"shastamon/internal/labels"
	"shastamon/internal/ldms"
	"shastamon/internal/loki"
	"shastamon/internal/omni"
	"shastamon/internal/redfish"
	"shastamon/internal/syslogd"
)

// poisonError marks a record-level failure — a malformed payload that will
// fail identically on every retry — as opposed to an infrastructure
// failure that a later tick may clear. The forwarder quarantines poisoned
// records to the topic's dead-letter queue instead of retrying them.
type poisonError struct{ err error }

func (e poisonError) Error() string { return e.err.Error() }
func (e poisonError) Unwrap() error { return e.err }

func poison(err error) error { return poisonError{err: err} }

// IsPoison reports whether err marks a malformed record rather than an
// infrastructure failure.
func IsPoison(err error) bool {
	var pe poisonError
	return errors.As(err, &pe)
}

// lokiEventBody is the log-line content of a transformed Redfish event —
// exactly the three fields the paper keeps (Fig. 3): "The rest fields are
// Severity, MessageId, and Message, which describe what the event was and
// should be sent as log content."
type lokiEventBody struct {
	Severity  string `json:"Severity"`
	MessageID string `json:"MessageId"`
	Message   string `json:"Message"`
}

// RedfishToLoki converts a Telemetry API Redfish payload (Fig. 2) into
// Loki push streams (Fig. 3):
//
//   - the ISO 8601 EventTimestamp becomes a Unix epoch in nanoseconds;
//   - OriginOfCondition and MessageArgs are dropped (link not useful,
//     args duplicate the Message);
//   - Context plus the enrichment labels cluster and data_type become
//     stream labels (low variation, cheap to index);
//   - Severity, MessageId and Message are wrapped as a JSON string so
//     Grafana/LogQL can re-extract them with `| json`.
func RedfishToLoki(p redfish.Payload, cluster string) ([]loki.PushStream, error) {
	var out []loki.PushStream
	for _, rec := range p.Metrics.Messages {
		ps := loki.PushStream{
			Labels: labels.FromStrings(
				"Context", rec.Context,
				"cluster", cluster,
				"data_type", "redfish_event",
			),
		}
		for _, ev := range rec.Events {
			ts, err := ev.Timestamp()
			if err != nil {
				return nil, fmt.Errorf("core: event timestamp: %w", err)
			}
			body, err := json.Marshal(lokiEventBody{
				Severity: ev.Severity, MessageID: ev.MessageID, Message: ev.Message,
			})
			if err != nil {
				return nil, err
			}
			ps.Entries = append(ps.Entries, loki.Entry{Timestamp: ts.UnixNano(), Line: string(body)})
		}
		if len(ps.Entries) > 0 {
			out = append(out, ps)
		}
	}
	return out, nil
}

// SensorToMetric converts an HMS sensor sample into a TSDB series. Metric
// names follow the SMA convention cray_telemetry_<sensor>.
func SensorToMetric(s hms.SensorSample) (name string, ls labels.Labels, tsMillis int64, value float64, err error) {
	ts, err := time.Parse(time.RFC3339Nano, s.Timestamp)
	if err != nil {
		return "", nil, 0, 0, fmt.Errorf("core: sensor timestamp: %w", err)
	}
	name = "cray_telemetry_" + strings.ToLower(s.Sensor)
	ls = labels.FromStrings(
		"xname", s.Context,
		"physical_context", s.PhysicalContext,
		"unit", s.Unit,
	)
	return name, ls, ts.UnixMilli(), s.Value, nil
}

// SyslogToLoki converts an aggregated syslog message into a Loki push
// stream, labelled for the future-work syslog monitoring use case.
func SyslogToLoki(m syslogd.Message, cluster string) loki.PushStream {
	return loki.PushStream{
		Labels: labels.FromStrings(
			"cluster", cluster,
			"data_type", "syslog",
			"hostname", m.Hostname,
			"app", m.App,
			"severity", m.SeverityName(),
		),
		Entries: []loki.Entry{{Timestamp: m.Timestamp.UnixNano(), Line: m.Text}},
	}
}

// FabricEventLabels are the stream labels of fabric manager monitor
// events, matching the paper's Fig. 7 ("It has two labels: app and
// cluster").
func FabricEventLabels(cluster string) labels.Labels {
	return labels.FromStrings("app", "fabric_manager_monitor", "cluster", cluster)
}

// unmarshalSyslog decodes a syslog topic record.
func unmarshalSyslog(raw []byte, m *syslogd.Message) error {
	if err := json.Unmarshal(raw, m); err != nil {
		return poison(fmt.Errorf("core: syslog record: %w", err))
	}
	return nil
}

// ldmsRecordToWarehouse routes one raw LDMS metric set into the metric
// store via the warehouse.
func ldmsRecordToWarehouse(w *omni.Warehouse, raw []byte) error {
	names, lss, mss, vals, err := ldms.ToSeries(raw)
	if err != nil {
		return poison(err)
	}
	for i := range names {
		if err := w.IngestMetric(names[i], lss[i], mss[i], vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// sensorRecordToWarehouse routes one raw telemetry record to the metric
// store through the warehouse façade (so OMNI's ingest accounting sees
// it).
func sensorRecordToWarehouse(w *omni.Warehouse, raw []byte) error {
	var s hms.SensorSample
	if err := json.Unmarshal(raw, &s); err != nil {
		return poison(fmt.Errorf("core: sensor record: %w", err))
	}
	name, ls, ms, v, err := SensorToMetric(s)
	if err != nil {
		return poison(err)
	}
	return w.IngestMetric(name, ls, ms, v)
}
