package core

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/anomaly"
	"shastamon/internal/chaos"
	"shastamon/internal/chunkenc"
	"shastamon/internal/exporters"
	"shastamon/internal/fabricmgr"
	"shastamon/internal/frontend"
	"shastamon/internal/hms"
	"shastamon/internal/kafka"
	"shastamon/internal/labels"
	"shastamon/internal/ldms"
	"shastamon/internal/loki"
	"shastamon/internal/obs"
	"shastamon/internal/omni"
	"shastamon/internal/promtext"
	"shastamon/internal/redfish"
	"shastamon/internal/ruler"
	"shastamon/internal/servicenow"
	"shastamon/internal/shasta"
	"shastamon/internal/slack"
	"shastamon/internal/syslogd"
	"shastamon/internal/telemetry"
	"shastamon/internal/tenant"
	"shastamon/internal/vmagent"
	"shastamon/internal/vmalert"
	"shastamon/internal/wal"
)

// Options configure a Pipeline. Zero values take the defaults documented
// on each field.
type Options struct {
	// Cluster sizes the simulated Shasta system; zero takes
	// shasta.DefaultConfig.
	Cluster shasta.Config
	// Token is the telemetry API bearer token ("" disables auth).
	Token string
	// Retention bounds warehouse history (default: 2 years, OMNI's horizon).
	Retention time.Duration
	// WarehouseShards stripes the warehouse stores over this many lock
	// shards (0 = GOMAXPROCS); see omni.Config.Shards.
	WarehouseShards int
	// LokiLimits configures the warehouse log store, including the
	// query-path guardrails (MaxBytesScanned, QueryTimeout,
	// SlowQuerySeconds). Zero takes loki.DefaultLimits.
	LokiLimits loki.Limits
	// LogRules are Loki Ruler alerting rules.
	LogRules []ruler.Rule
	// MetricRules are vmalert alerting rules.
	MetricRules []vmalert.Rule
	// Route overrides the default Alertmanager routing tree (slack for
	// everything; critical alerts additionally to ServiceNow).
	Route *alertmanager.Route
	// Inhibit rules mute dependent alerts while their cause fires — the
	// paper's "reduction in noise caused by multiple alerts from the same
	// events". Example: a chassis power alert inhibiting the switch
	// alerts of the same chassis.
	Inhibit []alertmanager.InhibitRule
	// GroupWait for the default route (default 0 for responsive tests).
	GroupWait time.Duration
	// TraceCapacity bounds the event tracer's ring buffer (default 512).
	TraceCapacity int
	// Chaos, when set, wires the fault injector into the pipeline's
	// dependency boundaries: kafka produces ("kafka.produce"), the
	// telemetry API transport ("telemetry.http"), warehouse ingestion
	// ("warehouse.ingest"), and the notifier transports ("slack.http",
	// "servicenow.http"). Nil runs fault-free.
	Chaos *chaos.Injector
	// SLO is the detection-latency objective end-to-end latencies are
	// held to; zero fields take obs.DefaultSLO (95% within 90s).
	SLO obs.SLOConfig
	// MetaAlerts, when true, appends the built-in MetaRules() pack to the
	// vmalert rules: the pipeline alerting on its own health (SLO burn,
	// breakers stuck open, DLQ growth, stage errors, scrape staleness)
	// through the same Alertmanager -> Slack path as hardware alerts.
	MetaAlerts bool
	// DataDir, when set, makes the warehouse durable: both stores write
	// per-shard WALs, spill sealed chunks and checkpoint under this
	// directory, and New recovers whatever a previous run left there.
	DataDir string
	// WAL tunes the write-ahead logs when DataDir is set (fsync policy,
	// segment size, degradation breaker). The breaker clock is wired to
	// the pipeline clock unless already set.
	WAL wal.StoreOptions
	// CheckpointEvery bounds WAL replay (default 1m); the tick's
	// "checkpoint" stage snapshots the stores at most this often.
	CheckpointEvery time.Duration
	// Frontend tunes the warehouse query frontend (time splitting,
	// results cache, admission control). The frontend clock is wired to
	// the pipeline clock unless already set, so mutable-head freshness
	// tracks simulated time in experiments.
	Frontend frontend.Config
	// TenantLimits supplies per-tenant warehouse limits (stream/series
	// counts, ingest rate, chunk-cache share, query concurrency); nil
	// keeps single-tenant behaviour.
	TenantLimits *tenant.Overrides
	// TenantTokens maps bearer tokens to tenant IDs on the telemetry
	// API, alongside the single shared Token. Empty adds none.
	TenantTokens map[string]string
}

// Pipeline is the assembled monitoring framework of Fig. 1.
type Pipeline struct {
	Cluster   *shasta.Cluster
	Broker    *kafka.Broker
	Collector *hms.Collector
	Warehouse *omni.Warehouse

	FabricManager *fabricmgr.Manager
	FabricMonitor *fabricmgr.Monitor

	SyslogAggregator *syslogd.Aggregator
	LDMS             *ldms.Producer

	NodeExporter  *exporters.NodeExporter
	KafkaExporter *exporters.KafkaExporter
	ArubaExporter *exporters.ArubaExporter
	VMAgent       *vmagent.Agent

	Ruler        *ruler.Ruler
	VMAlert      *vmalert.VMAlert
	Alertmanager *alertmanager.Manager

	Slack      *slack.Webhook
	ServiceNow *servicenow.Instance

	// Tracer records per-event traces across pipeline stages; its handler
	// is mounted at /debug/trace/ on the observability endpoint.
	Tracer *obs.Tracer

	// Templates is the Drain-style log-template miner fed from the syslog
	// ingest path; its per-template rate series reach the TSDB via the
	// vmagent "shastamon" self-scrape, and /debug/templates lists the
	// mined patterns.
	Templates *anomaly.Miner

	Telemetry     *telemetry.Server
	slackNotifier *slack.Notifier
	snNotifier    *servicenow.Notifier
	obsURL        string
	obsReg        *obs.Registry
	tickDur       *obs.Histogram
	stageDur      *obs.HistogramVec
	forwardedCtr  *obs.Counter
	stageErrCtr   *obs.CounterVec
	dlqCtr        *obs.CounterVec
	tickFailCtr   *obs.Counter
	detectLatency *obs.HistogramVec
	slo           *obs.SLO
	tmplLines     *obs.CounterVec
	tmplNovel     *obs.Counter

	subEvents  *telemetry.Subscription
	subSensors *telemetry.Subscription
	subSyslog  *telemetry.Subscription
	subLDMS    *telemetry.Subscription

	servers   []*http.Server
	closeOnce sync.Once

	clockMu sync.Mutex
	current time.Time
}

// Now returns the pipeline clock: the time set by SetNow (deterministic
// experiment mode), or the wall clock.
func (p *Pipeline) Now() time.Time {
	p.clockMu.Lock()
	defer p.clockMu.Unlock()
	if p.current.IsZero() {
		return time.Now()
	}
	return p.current
}

// SetNow pins the pipeline clock for deterministic runs.
func (p *Pipeline) SetNow(t time.Time) {
	p.clockMu.Lock()
	p.current = t
	p.clockMu.Unlock()
}

func serve(handler http.Handler) (*http.Server, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(l) }()
	return srv, "http://" + l.Addr().String(), nil
}

// New assembles the full pipeline, starting loopback HTTP servers for the
// Telemetry API, the fabric manager, the exporters, Slack and ServiceNow.
// Callers must Close it.
func New(opts Options) (*Pipeline, error) {
	if opts.Cluster.Name == "" {
		opts.Cluster = shasta.DefaultConfig()
	}
	if opts.Retention == 0 {
		opts.Retention = 2 * 365 * 24 * time.Hour
	}
	p := &Pipeline{}
	fail := func(err error) (*Pipeline, error) {
		p.Close()
		return nil, err
	}

	p.Tracer = obs.NewTracer(opts.TraceCapacity)
	p.obsReg = obs.NewRegistry()
	p.tickDur = p.obsReg.Histogram(obs.Namespace+"core_tick_duration_seconds",
		"Wall time of one full pipeline tick.", obs.DefBuckets)
	p.forwardedCtr = p.obsReg.Counter(obs.Namespace+"core_records_forwarded_total",
		"Telemetry API records forwarded into the warehouse.")
	p.stageErrCtr = p.obsReg.CounterVec(obs.Namespace+"stage_errors_total",
		"Tick stage failures by stage; a failing stage is isolated, the rest of the tick proceeds.", "stage")
	p.dlqCtr = p.obsReg.CounterVec(obs.Namespace+"dlq_records_total",
		"Malformed records quarantined to a dead-letter topic, by source topic.", "topic")
	p.tickFailCtr = p.obsReg.Counter(obs.Namespace+"core_tick_failures_total",
		"Ticks that completed with at least one stage error.")
	p.stageDur = p.obsReg.HistogramVec(obs.Namespace+"core_stage_duration_seconds",
		"Wall time of each tick stage, by stage.", obs.DefBuckets, "stage")
	p.detectLatency = p.obsReg.HistogramVec(obs.Namespace+"detection_latency_seconds",
		"End-to-end detection latency from event origin to first successful alert delivery, by rule; buckets carry exemplar trace IDs.",
		obs.LatencyBuckets, "rule")
	p.slo = obs.NewSLO(p.obsReg, opts.SLO)
	// Log-template mining over the syslog ingest path: per-template rate
	// counters become TSDB series through the vmagent self-scrape, so the
	// ruler's novel-template meta-rule and dashboards query them like any
	// other metric.
	p.Templates = anomaly.NewMiner(anomaly.MinerConfig{})
	p.tmplLines = p.obsReg.CounterVec(obs.Namespace+"templates_lines_total",
		"Syslog lines matched per mined Drain template.", "template")
	p.tmplNovel = p.obsReg.Counter(obs.Namespace+"templates_novel_total",
		"Syslog lines that minted a previously-unseen log template.")
	p.obsReg.Collect(func() []promtext.Family {
		st := p.Templates.Stats()
		active := promtext.Family{
			Name: obs.Namespace + "templates_active", Type: "gauge",
			Help: "Distinct log templates currently mined (bounded by the miner's MaxClusters).",
		}
		active = obs.Sample(active, float64(st.Templates))
		sat := promtext.Family{
			Name: obs.Namespace + "anomaly_detector_saturated", Type: "gauge",
			Help: "1 when detector state hit its memory bound and new series are dropped, by rule.",
		}
		v := 0.0
		if st.Saturated {
			v = 1
		}
		// The miner shares the detector-saturation family under a pseudo
		// rule name so one meta-rule watches every bounded state.
		sat = obs.Sample(sat, v, "rule", "log_templates")
		return []promtext.Family{active, sat}
	})
	// The united breaker family: one gauge per protected dependency. Each
	// component also exposes its own uniquely-named breaker gauge; this is
	// the cross-cutting view dashboards alert on.
	p.obsReg.Collect(func() []promtext.Family {
		f := promtext.Family{
			Name: obs.Namespace + "breaker_state", Type: "gauge",
			Help: "Circuit breaker state by dependency (0 closed, 1 half-open, 2 open).",
		}
		if p.slackNotifier != nil {
			f = obs.Sample(f, p.slackNotifier.Breaker().StateValue(), "dependency", "slack")
		}
		if p.snNotifier != nil {
			f = obs.Sample(f, p.snNotifier.Breaker().StateValue(), "dependency", "servicenow")
		}
		if p.VMAgent != nil {
			states := p.VMAgent.BreakerStates(p.Now())
			targets := make([]string, 0, len(states))
			for t := range states {
				targets = append(targets, t)
			}
			sort.Strings(targets)
			for _, t := range targets {
				f = obs.Sample(f, float64(states[t]), "dependency", "scrape:"+t)
			}
		}
		if p.Warehouse != nil {
			for _, nb := range p.Warehouse.WALBreakers() {
				f = obs.Sample(f, nb.Breaker.StateValue(), "dependency", nb.Name)
			}
		}
		if len(f.Metrics) == 0 {
			return nil
		}
		return []promtext.Family{f}
	})

	var err error
	if p.Cluster, err = shasta.NewCluster(opts.Cluster); err != nil {
		return fail(err)
	}
	p.Broker = kafka.NewBroker()
	if opts.Chaos != nil {
		p.Broker.SetProduceHook(opts.Chaos.HookFor("kafka.produce"))
	}
	if p.Collector, err = hms.NewCollector(p.Cluster, p.Broker, 4); err != nil {
		return fail(err)
	}
	p.Collector.SetTracer(p.Tracer)
	// Breaker open windows must track simulated time in experiments, like
	// the notifier breakers below.
	if opts.WAL.Now == nil {
		opts.WAL.Now = p.Now
	}
	if opts.Frontend.Now == nil {
		opts.Frontend.Now = p.Now
	}
	if p.Warehouse, err = omni.Open(omni.Config{
		Retention: opts.Retention, Shards: opts.WarehouseShards, LokiLimits: opts.LokiLimits,
		DataDir: opts.DataDir, WAL: opts.WAL, CheckpointEvery: opts.CheckpointEvery,
		Frontend: opts.Frontend, TenantOverrides: opts.TenantLimits,
	}); err != nil {
		return fail(err)
	}
	if opts.Chaos != nil {
		p.Warehouse.SetFaultHook(opts.Chaos.HookFor("warehouse.ingest"))
	}
	// Warehouse queries replay their spans onto the event tracer, so a slow
	// query shows up at /debug/trace/{id}?format=waterfall like any event.
	p.Warehouse.Tracker.SetTracer(p.Tracer)
	// Go runtime self-metrics ride the same registry the vmagent
	// "shastamon" job scrapes: GC pressure lands next to query latency.
	obs.RegisterRuntime(p.obsReg)

	// The pipeline's own observability endpoint: every component registry
	// united on /metrics, plus the event tracer on /debug/trace/. It is
	// served before vmagent is assembled so the agent can scrape it like
	// any other exporter — the self-monitoring loop.
	srvObs, obsURL, err := serve(p.ObsHandler())
	if err != nil {
		return fail(err)
	}
	p.servers = append(p.servers, srvObs)
	p.obsURL = obsURL

	// Telemetry API server plus the three forwarder subscriptions.
	var tokens []string
	if opts.Token != "" {
		tokens = []string{opts.Token}
		// Tenant credentials are additionally accepted on an
		// authenticated telemetry API. They must not switch an open API
		// to authenticated mode: the pipeline's own collectors push with
		// opts.Token, so with no Token set the internal surface stays
		// open and tenant auth gates only the omnid HTTP mounts.
		for tok := range opts.TenantTokens {
			tokens = append(tokens, tok)
		}
	}
	tsrv, err := telemetry.NewServer(telemetry.ServerConfig{
		Broker: p.Broker,
		Tokens: tokens,
		// Redfish events feed the alerting path; losing one across a server
		// crash could lose an incident, so their subscription commits only
		// after each response is written (at-least-once). The sensor/LDMS
		// topics stay at-most-once: a lost sample only dents a time series.
		ManualCommitTopics: []string{hms.TopicEvents},
	})
	if err != nil {
		return fail(err)
	}
	tsrv.SetTracer(p.Tracer)
	p.Telemetry = tsrv
	srv, turl, err := serve(tsrv.Handler())
	if err != nil {
		return fail(err)
	}
	p.servers = append(p.servers, srv)
	var telemetryHTTP *http.Client
	if opts.Chaos != nil {
		telemetryHTTP = opts.Chaos.Client("telemetry.http")
	}
	tclient := telemetry.NewClient(turl, opts.Token, telemetryHTTP)
	if p.subEvents, err = tclient.Subscribe("omni-redfish", hms.TopicEvents); err != nil {
		return fail(err)
	}
	if p.subSensors, err = tclient.Subscribe("omni-sensors",
		hms.TopicTemperature, hms.TopicPower, hms.TopicFan, hms.TopicHumidity); err != nil {
		return fail(err)
	}
	if p.subSyslog, err = tclient.Subscribe("omni-syslog", hms.TopicSyslog); err != nil {
		return fail(err)
	}

	// Fabric manager API and its monitor, pushing straight to Loki.
	p.FabricManager = fabricmgr.NewManager(p.Cluster)
	srv, furl, err := serve(p.FabricManager.Handler())
	if err != nil {
		return fail(err)
	}
	p.servers = append(p.servers, srv)
	fabricLabels := FabricEventLabels(p.Cluster.Name())
	p.FabricMonitor = fabricmgr.NewMonitor(furl, nil, fabricmgr.SinkFunc(func(e fabricmgr.Event) error {
		// Fabric events bypass Kafka, so their trace begins here: minted
		// keyed by the switch xname, origin at the event timestamp, so a
		// switch-offline alert gets end-to-end latency like a Redfish one.
		id := p.Tracer.Start(e.Xname, e.Timestamp, e.Problem)
		t0 := time.Now()
		err := p.Warehouse.IngestLogs([]loki.PushStream{{
			Labels:  fabricLabels,
			Entries: []loki.Entry{{Timestamp: e.Timestamp.UnixNano(), Line: e.Line()}},
		}})
		if err == nil {
			p.Tracer.Span(id, "loki.ingest", e.Timestamp, e.Timestamp.Add(time.Since(t0)), e.Line())
		}
		return err
	}))

	// Syslog aggregation into Kafka (topic created by the collector).
	p.SyslogAggregator = syslogd.NewAggregator(p.Broker)

	// LDMS samplers on a subset of nodes (full Perlmutter runs one per
	// node; 16 keeps the simulator's per-tick cost bounded).
	nodes := p.Cluster.Nodes()
	ldmsNodes := make([]string, 0, 16)
	for i, n := range nodes {
		if i >= 16 {
			break
		}
		ldmsNodes = append(ldmsNodes, n.String())
	}
	ldmsSampler, err := ldms.NewSampler(21, ldmsNodes...)
	if err != nil {
		return fail(err)
	}
	if p.LDMS, err = ldms.NewProducer(ldmsSampler, p.Broker, 4); err != nil {
		return fail(err)
	}
	if p.subLDMS, err = tclient.Subscribe("omni-ldms", ldms.Topic); err != nil {
		return fail(err)
	}

	// Exporters and the scraper.
	p.NodeExporter = exporters.NewNodeExporter(nodes[0].String(), 11)
	p.KafkaExporter = exporters.NewKafkaExporter(p.Broker)
	p.ArubaExporter = exporters.NewArubaExporter("mgmt-aruba-1", 8, 12)
	var jobs []vmagent.ScrapeConfig
	for _, e := range []struct {
		name    string
		handler http.Handler
	}{
		{"node", p.NodeExporter.Handler()},
		{"kafka", p.KafkaExporter.Handler()},
		{"aruba", p.ArubaExporter.Handler()},
	} {
		srv, url, err := serve(e.handler)
		if err != nil {
			return fail(err)
		}
		p.servers = append(p.servers, srv)
		jobs = append(jobs, vmagent.ScrapeConfig{JobName: e.name, Targets: []string{url + "/metrics"}})
	}
	// Self-monitoring: scrape the pipeline's own /metrics endpoint into
	// the warehouse TSDB so shastamon_* series are queryable via PromQL.
	jobs = append(jobs, vmagent.ScrapeConfig{JobName: "shastamon", Targets: []string{p.obsURL + "/metrics"}})
	if p.VMAgent, err = vmagent.New(p.Warehouse.Metrics, nil, jobs...); err != nil {
		return fail(err)
	}

	// Notification terminals.
	p.Slack = slack.NewWebhook()
	srv, slackURL, err := serve(p.Slack.Handler())
	if err != nil {
		return fail(err)
	}
	p.servers = append(p.servers, srv)
	p.ServiceNow = servicenow.NewInstance(servicenow.Config{Now: p.Now})
	loadCMDB(p.ServiceNow, p.Cluster)
	srv, snURL, err := serve(p.ServiceNow.Handler())
	if err != nil {
		return fail(err)
	}
	p.servers = append(p.servers, srv)

	var slackHTTP, snHTTP *http.Client
	if opts.Chaos != nil {
		slackHTTP = opts.Chaos.Client("slack.http")
		snHTTP = opts.Chaos.Client("servicenow.http")
	}
	slackNotifier := slack.NewNotifier("slack", slackURL, "#perlmutter-alerts", slackHTTP)
	snNotifier := servicenow.NewNotifier("servicenow", snURL, snHTTP)
	// Breaker open windows must track simulated time in experiments.
	slackNotifier.SetClock(p.Now)
	snNotifier.SetClock(p.Now)
	p.slackNotifier = slackNotifier
	p.snNotifier = snNotifier

	route := opts.Route
	if route == nil {
		critical := labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")}
		gw := opts.GroupWait
		if gw == 0 {
			gw = time.Nanosecond
		}
		route = &alertmanager.Route{
			Receiver:  "slack",
			GroupWait: gw,
			GroupBy:   []string{"alertname"},
			Routes: []*alertmanager.Route{
				{Receiver: "servicenow", Matchers: critical, GroupWait: gw, Continue: true},
				{Receiver: "slack", Matchers: critical, GroupWait: gw},
			},
		}
	}
	if p.Alertmanager, err = alertmanager.New(alertmanager.Config{
		Route:       route,
		Receivers:   []alertmanager.Receiver{slackNotifier, snNotifier},
		Inhibit:     opts.Inhibit,
		Now:         p.Now,
		Tracer:      p.Tracer,
		OnDelivered: p.alertDelivered,
	}); err != nil {
		return fail(err)
	}

	if p.Ruler, err = ruler.New(p.Warehouse.LogQL, p.Alertmanager, p.Now, opts.LogRules...); err != nil {
		return fail(err)
	}
	p.Ruler.SetTracer(p.Tracer)
	metricRules := opts.MetricRules
	if opts.MetaAlerts {
		metricRules = append(append([]vmalert.Rule{}, metricRules...), MetaRules()...)
	}
	if p.VMAlert, err = vmalert.New(p.Warehouse.PromQL, p.Alertmanager, p.Now, metricRules...); err != nil {
		return fail(err)
	}
	p.VMAlert.SetTracer(p.Tracer)
	return p, nil
}

// alertDelivered is the Alertmanager's per-alert delivery hook: the
// moment an alert first lands at a receiver it closes out the event's
// end-to-end detection latency — origin (Redfish emit or fabric event)
// to delivery — into shastamon_detection_latency_seconds{rule} with an
// exemplar trace ID, and feeds the SLO accounting. The Tracer.Once guard
// makes the observation exactly-once per trace and rule even when the
// same alert is delivered to both Slack and ServiceNow or re-notified
// later.
func (p *Pipeline) alertDelivered(a alertmanager.Alert, receiver string, start, end time.Time) {
	id := p.Tracer.IDByKey(alertmanager.TraceKey(a.Labels))
	if id == "" {
		return
	}
	origin, ok := p.Tracer.Origin(id)
	if !ok {
		return
	}
	rule := a.Name()
	if rule == "" || !p.Tracer.Once(id, "latency."+rule) {
		return
	}
	lat := end.Sub(origin)
	if lat < 0 {
		lat = 0
	}
	p.detectLatency.With(rule).ObserveWithExemplar(lat.Seconds(), end.UnixMilli(), "trace_id", id)
	p.Tracer.Annotate(id, "detection_latency_seconds",
		strconv.FormatFloat(lat.Seconds(), 'g', -1, 64))
	p.slo.Observe(rule, lat)
}

// SLO exposes the detection-latency SLO tracker (report, handler).
func (p *Pipeline) SLO() *obs.SLO { return p.slo }

// SLOReport snapshots per-rule detection-latency SLO state.
func (p *Pipeline) SLOReport() obs.SLOReport { return p.slo.Report() }

// Gather unites every component's self-monitoring registry into one
// family list — the content of the pipeline's /metrics page.
func (p *Pipeline) Gather() []promtext.Family {
	var fams []promtext.Family
	add := func(r *obs.Registry) { fams = append(fams, r.Gather()...) }
	add(p.obsReg)
	if p.Broker != nil {
		add(p.Broker.Metrics())
	}
	if p.Collector != nil {
		add(p.Collector.Metrics())
	}
	if p.Telemetry != nil {
		add(p.Telemetry.Metrics())
	}
	if p.Warehouse != nil {
		add(p.Warehouse.ObsMetrics())
		add(p.Warehouse.Logs.Metrics())
		add(p.Warehouse.Metrics.Metrics())
	}
	if p.VMAgent != nil {
		add(p.VMAgent.Metrics())
	}
	if p.Ruler != nil {
		add(p.Ruler.Metrics())
	}
	if p.VMAlert != nil {
		add(p.VMAlert.Metrics())
	}
	if p.Alertmanager != nil {
		add(p.Alertmanager.Metrics())
	}
	if p.slackNotifier != nil {
		add(p.slackNotifier.Metrics())
	}
	if p.snNotifier != nil {
		add(p.snNotifier.Metrics())
	}
	return fams
}

// ObsHandler serves the pipeline's observability endpoint:
//
//	GET /metrics          united shastamon_* self-metrics (Prometheus text)
//	GET /debug/trace/     retained event traces; /debug/trace/{id} for one
//	                      (?format=waterfall for the plain-text span view)
//	GET /debug/slo        per-rule detection-latency SLO report (JSON)
//	GET /debug/queries    queries in flight right now (JSON)
//	POST /debug/queries/{id}/kill  cancel a runaway query mid-scan
//	GET /debug/slowlog    recent slow / limit-breached queries (JSON)
//	GET /debug/templates  mined log templates, busiest first (JSON)
func (p *Pipeline) ObsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(obs.GathererFunc(p.Gather)))
	mux.Handle("/debug/trace/", p.Tracer.Handler())
	mux.Handle("/debug/slo", p.slo.Handler())
	if p.Warehouse != nil && p.Warehouse.Tracker != nil {
		qh := p.Warehouse.Tracker.Handler()
		mux.Handle("/debug/queries", qh)
		mux.Handle("/debug/queries/", qh)
		mux.Handle("/debug/slowlog", qh)
	}
	mux.HandleFunc("/debug/templates", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Stats     anomaly.MinerStats `json:"stats"`
			Templates []anomaly.Template `json:"templates"`
		}{p.Templates.Stats(), p.Templates.Templates()})
	})
	return mux
}

// ObsTarget returns the base URL of the pipeline's observability server
// ("" before New completes) — its /metrics path is the vmagent
// "shastamon" job's scrape target.
func (p *Pipeline) ObsTarget() string { return p.obsURL }

// loadCMDB registers every component as a CI and records the service map:
// each compute node depends on a Rosetta switch in its chassis ("Each
// Rosetta switch connects eight compute nodes"), so a switch incident
// carries the impact set of its nodes.
func loadCMDB(sn *servicenow.Instance, cluster *shasta.Cluster) {
	var cis []servicenow.CI
	for _, n := range cluster.Nodes() {
		cis = append(cis, servicenow.CI{Name: n.String(), Class: "cmdb_ci_computer"})
	}
	for _, s := range cluster.Switches() {
		cis = append(cis, servicenow.CI{Name: s.String(), Class: "cmdb_ci_netgear", Attributes: map[string]string{"model": "Rosetta"}})
	}
	for _, b := range cluster.ChassisBMCs() {
		cis = append(cis, servicenow.CI{Name: b.String(), Class: "cmdb_ci_chassis"})
	}
	sn.LoadCMDB(cis...)

	// Group switches per chassis, then spread that chassis' nodes over them
	// eight to a switch.
	switchesByChassis := map[string][]shasta.Xname{}
	for _, s := range cluster.Switches() {
		switchesByChassis[s.Parent().String()] = append(switchesByChassis[s.Parent().String()], s)
	}
	nodeIdx := map[string]int{}
	for _, n := range cluster.Nodes() {
		chassis := n.Parent().Parent().Parent().String() // node -> bmc -> blade -> chassis
		switches := switchesByChassis[chassis]
		if len(switches) == 0 {
			continue
		}
		i := nodeIdx[chassis]
		nodeIdx[chassis] = i + 1
		sw := switches[(i/8)%len(switches)]
		_ = sn.AddDependency(n.String(), sw.String())
	}
}

// quarantineRecord diverts a malformed record to its topic's dead-letter
// queue, preserving the original payload and headers plus the error
// reason and source coordinates.
func (p *Pipeline) quarantineRecord(rec telemetry.Record, raw []byte, reason error) error {
	key, _ := base64.StdEncoding.DecodeString(rec.Key)
	m := kafka.Message{
		Topic: rec.Topic, Partition: rec.Partition, Offset: rec.Offset,
		Key: key, Value: raw, Timestamp: rec.Timestamp, Headers: rec.Headers,
	}
	if _, _, err := kafka.Quarantine(p.Broker, m, reason); err != nil {
		return err
	}
	p.dlqCtr.With(rec.Topic).Inc()
	if tid := rec.Headers[obs.TraceHeader]; tid != "" {
		p.Tracer.Stage(tid, "core.quarantine", p.Now(), reason.Error())
	}
	return nil
}

// drain empties one subscription, routing each record through handle.
// Poisoned records (IsPoison) are quarantined and skipped; infrastructure
// errors abort the drain — the next tick retries it — without touching
// the other subscriptions.
func (p *Pipeline) drain(sub *telemetry.Subscription, name string, max int,
	handle func(rec telemetry.Record, raw []byte) error) (int, error) {
	total := 0
	for {
		recs, err := sub.Poll(max, 0)
		if err != nil {
			return total, fmt.Errorf("%s: %w", name, err)
		}
		if len(recs) == 0 {
			return total, nil
		}
		for _, rec := range recs {
			raw, err := rec.DecodeValue()
			if err != nil {
				err = poison(fmt.Errorf("core: %s value: %w", name, err))
				raw = []byte(rec.Value)
			} else {
				err = handle(rec, raw)
			}
			if err != nil {
				if IsPoison(err) {
					if qerr := p.quarantineRecord(rec, raw, err); qerr != nil {
						return total, fmt.Errorf("%s: quarantine: %w", name, qerr)
					}
					continue
				}
				return total, fmt.Errorf("%s: %w", name, err)
			}
			total++
		}
	}
}

func (p *Pipeline) forwardEvent(rec telemetry.Record, raw []byte) error {
	tid := rec.Headers[obs.TraceHeader]
	now := p.Now()
	t0 := time.Now()
	payload, err := redfish.ParsePayload(raw)
	if err != nil {
		p.Tracer.Stage(tid, "core.forward", now, rec.Topic)
		return poison(fmt.Errorf("core: event payload: %w", err))
	}
	streams, err := RedfishToLoki(payload, p.Cluster.Name())
	if err != nil {
		p.Tracer.Stage(tid, "core.forward", now, rec.Topic)
		return poison(err)
	}
	p.Tracer.Span(tid, "core.forward", now, now.Add(time.Since(t0)), rec.Topic)
	// Out-of-order entries (BMC clock skew) are dropped and counted
	// by the store; they must not stall the forwarder.
	t1 := time.Now()
	if err := p.Warehouse.IngestLogs(streams); err != nil && !errors.Is(err, chunkenc.ErrOutOfOrder) {
		return err
	}
	p.Tracer.Span(tid, "loki.ingest", now, now.Add(time.Since(t1)),
		fmt.Sprintf("%d stream(s)", len(streams)))
	return nil
}

func (p *Pipeline) forwardSyslog(_ telemetry.Record, raw []byte) error {
	var m syslogd.Message
	if err := unmarshalSyslog(raw, &m); err != nil {
		return err
	}
	// Template mining rides the ingest path: every line updates the
	// bounded Drain tree and its per-template rate counter.
	id, novel := p.Templates.Learn(m.Text)
	p.tmplLines.With(anomaly.TemplateLabel(id)).Inc()
	if novel {
		p.tmplNovel.Inc()
	}
	if err := p.Warehouse.IngestLogs([]loki.PushStream{SyslogToLoki(m, p.Cluster.Name())}); err != nil &&
		!errors.Is(err, chunkenc.ErrOutOfOrder) {
		return err
	}
	return nil
}

// ForwardPending drains the telemetry subscriptions into the warehouse:
// Redfish events to Loki (via RedfishToLoki), sensor samples to the TSDB,
// syslog to Loki. It returns the number of records forwarded. The four
// drains are error-isolated: a failing subscription reports its error but
// does not block the others, and malformed records are quarantined to
// per-topic dead-letter queues instead of wedging the forwarder.
func (p *Pipeline) ForwardPending() (int, error) {
	total := 0
	defer func() { p.forwardedCtr.Add(float64(total)) }()
	var errs []error
	for _, d := range []struct {
		sub  *telemetry.Subscription
		name string
		max  int
		fn   func(rec telemetry.Record, raw []byte) error
	}{
		{p.subEvents, "events", 500, p.forwardEvent},
		{p.subSensors, "sensors", 2000, func(_ telemetry.Record, raw []byte) error {
			return sensorRecordToWarehouse(p.Warehouse, raw)
		}},
		{p.subLDMS, "ldms", 2000, func(_ telemetry.Record, raw []byte) error {
			return ldmsRecordToWarehouse(p.Warehouse, raw)
		}},
		{p.subSyslog, "syslog", 2000, p.forwardSyslog},
	} {
		n, err := p.drain(d.sub, d.name, d.max, d.fn)
		total += n
		if err != nil {
			errs = append(errs, err)
		}
	}
	return total, errors.Join(errs...)
}

// DLQRecords returns the quarantined records of topic (source or .dlq
// name); nil if nothing was ever quarantined from it.
func (p *Pipeline) DLQRecords(topic string) ([]kafka.Message, error) {
	return kafka.DLQRecords(p.Broker, topic)
}

// ReplayDLQ re-produces topic's quarantined records onto their source
// topic (after an operator fixes the producer or the parser) and returns
// how many were replayed.
func (p *Pipeline) ReplayDLQ(topic string) (int, error) {
	return kafka.ReplayDLQ(p.Broker, topic)
}

// Tick advances the whole pipeline one synchronous cycle at the given
// simulated time: collect hardware telemetry, forward it to the stores,
// poll the fabric manager, scrape exporters, evaluate alert rules, flush
// the Alertmanager and enforce retention. Experiments drive Tick with a
// simulated clock to reproduce the paper's figures deterministically.
// Each stage is error-isolated: a failing stage increments
// shastamon_stage_errors_total{stage} and the rest of the tick still
// runs — crucially, alert evaluation and the Alertmanager flush happen
// even when collection is degraded, so already-ingested evidence still
// raises incidents. Tick returns the joined stage errors.
func (p *Pipeline) Tick(now time.Time) error {
	t0 := time.Now()
	defer func() { p.tickDur.Observe(time.Since(t0).Seconds()) }()
	p.SetNow(now)
	var errs []error
	stage := func(name string, fn func() error) {
		s0 := time.Now()
		err := fn()
		p.stageDur.With(name).Observe(time.Since(s0).Seconds())
		if err != nil {
			p.stageErrCtr.With(name).Inc()
			errs = append(errs, fmt.Errorf("core: %s: %w", name, err))
		}
	}
	stage("collect", func() error { _, _, err := p.Collector.CollectOnce(now); return err })
	stage("ldms", func() error { _, err := p.LDMS.ProduceOnce(now); return err })
	stage("forward", func() error { _, err := p.ForwardPending(); return err })
	stage("fabric_poll", func() error { _, err := p.FabricMonitor.PollOnce(now); return err })
	stage("scrape", func() error { return p.VMAgent.ScrapeOnce(now) })
	stage("ruler", func() error { _, err := p.Ruler.EvalOnce(); return err })
	stage("vmalert", func() error { _, err := p.VMAlert.EvalOnce(); return err })
	stage("alertmanager_flush", func() error { p.Alertmanager.Flush(); return nil })
	stage("retention", func() error { p.Warehouse.EnforceRetention(now); return nil })
	stage("checkpoint", func() error { return p.Warehouse.MaybeCheckpoint(now) })
	if len(errs) > 0 {
		p.tickFailCtr.Inc()
		return errors.Join(errs...)
	}
	return nil
}

// Run operates the pipeline on wall-clock time until the context is
// cancelled: every component loops at its own interval, communicating
// through the same paths Tick exercises synchronously. Tick errors do not
// exit the loop — the pipeline is the thing that must outlive its
// dependencies' outages — they stretch the interval with bounded
// exponential backoff (doubling up to 30s) until a clean tick restores
// it. Run only returns the context's error.
func (p *Pipeline) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	const maxBackoff = 30 * time.Second
	backoff := interval
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-t.C:
			if err := p.Tick(now); err != nil {
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
				t.Reset(backoff)
			} else if backoff != interval {
				backoff = interval
				t.Reset(interval)
			}
		}
	}
}

// Close shuts down the pipeline's HTTP servers and subscriptions, then
// flushes the warehouse's durable state: a final checkpoint, WAL close
// and CLEAN marker so the next start skips replay. It is idempotent, and
// shutdowns within each group run in parallel (subscriptions first —
// they talk to the telemetry server; the warehouse last, once nothing
// can ingest any more).
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		var wg sync.WaitGroup
		for _, sub := range []*telemetry.Subscription{p.subEvents, p.subSensors, p.subSyslog, p.subLDMS} {
			if sub == nil {
				continue
			}
			wg.Add(1)
			go func(s *telemetry.Subscription) {
				defer wg.Done()
				_ = s.Close()
			}(sub)
		}
		wg.Wait()
		for _, srv := range p.servers {
			wg.Add(1)
			go func(srv *http.Server) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_ = srv.Shutdown(ctx)
				cancel()
			}(srv)
		}
		wg.Wait()
		if p.Warehouse != nil {
			_ = p.Warehouse.Shutdown()
		}
	})
}
