package promql

import (
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/tsdb"
)

func setupDB(t testing.TB) (*tsdb.DB, *Engine) {
	t.Helper()
	db := tsdb.New()
	return db, NewEngine(db)
}

func app(t testing.TB, db *tsdb.DB, name string, kv []string, ts int64, v float64) {
	t.Helper()
	if err := db.AppendMetric(name, labels.FromStrings(kv...), ts, v); err != nil {
		t.Fatal(err)
	}
}

func TestParseRenders(t *testing.T) {
	for _, q := range []string{
		`up`,
		`up{job="node"}`,
		`rate(node_cpu_seconds_total{mode="idle"}[5m])`,
		`sum(rate(http_requests_total[1m])) by (code)`,
		`node_temp_celsius > 75`,
		`absent(up{job="node"})`,
		`sum(up) by (job) * 100`,
	} {
		e, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, err := Parse(e.String()); err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		``,
		`{}`,
		`rate(up)`,     // missing range
		`rate(up[xx])`, // bad duration
		`sum(`,         // unbalanced
		`up{job=}`,     // bad matcher
		`up > `,        // missing rhs
		`5 > 4`,        // scalar comparison
		`up + down`,    // vector-vector unsupported
		`up{job="n"} extra`,
	} {
		e, err := Parse(q)
		if err != nil {
			continue
		}
		// some forms only fail at eval time
		_, eng := setupDB(t)
		if _, err := eng.Instant(e, 1000); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestInstantSelector(t *testing.T) {
	db, eng := setupDB(t)
	app(t, db, "up", []string{"job", "node"}, 1000, 1)
	app(t, db, "up", []string{"job", "kafka"}, 1000, 0)
	vec, err := eng.Query(`up`, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 2 {
		t.Fatalf("%+v", vec)
	}
	vec, err = eng.Query(`up{job="kafka"}`, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 0 {
		t.Fatalf("%+v", vec)
	}
}

func TestStaleness(t *testing.T) {
	db, eng := setupDB(t)
	app(t, db, "up", nil, 1000, 1)
	vec, _ := eng.Query(`up`, 1000+DefaultLookback.Milliseconds()+1)
	if len(vec) != 0 {
		t.Fatalf("stale sample returned: %+v", vec)
	}
}

func TestRateCounter(t *testing.T) {
	db, eng := setupDB(t)
	// 1 unit per second for 60s.
	for i := 0; i <= 60; i++ {
		app(t, db, "reqs_total", nil, int64(i*1000), float64(i))
	}
	vec, err := eng.Query(`rate(reqs_total[60s])`, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V < 0.99 || vec[0].V > 1.01 {
		t.Fatalf("rate: %+v", vec)
	}
	if vec[0].Labels.Has(tsdb.MetricNameLabel) {
		t.Fatal("__name__ kept after rate")
	}
}

func TestRateCounterReset(t *testing.T) {
	db, eng := setupDB(t)
	vals := []float64{10, 20, 5, 15} // reset between 20 and 5
	for i, v := range vals {
		app(t, db, "c", nil, int64(i*1000), v)
	}
	vec, err := eng.Query(`increase(c[10s])`, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// increase = (20-10) + 5 (reset) + (15-5) = 25
	if len(vec) != 1 || vec[0].V != 25 {
		t.Fatalf("increase: %+v", vec)
	}
}

func TestOverTimeFunctions(t *testing.T) {
	db, eng := setupDB(t)
	for i, v := range []float64{10, 30, 20} {
		app(t, db, "g", nil, int64((i+1)*1000), v)
	}
	cases := map[string]float64{
		`avg_over_time(g[10s])`:   20,
		`sum_over_time(g[10s])`:   60,
		`min_over_time(g[10s])`:   10,
		`max_over_time(g[10s])`:   30,
		`count_over_time(g[10s])`: 3,
		`last_over_time(g[10s])`:  20,
		`delta(g[10s])`:           10,
		`idelta(g[10s])`:          -10,
	}
	for q, want := range cases {
		vec, err := eng.Query(q, 4000)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(vec) != 1 || vec[0].V != want {
			t.Fatalf("%s: got %+v want %g", q, vec, want)
		}
	}
}

func TestAbsent(t *testing.T) {
	db, eng := setupDB(t)
	vec, err := eng.Query(`absent(up{job="ghost"})`, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 1 || vec[0].Labels.Get("job") != "ghost" {
		t.Fatalf("%+v", vec)
	}
	app(t, db, "up", []string{"job", "ghost"}, 1000, 1)
	vec, _ = eng.Query(`absent(up{job="ghost"})`, 1500)
	if len(vec) != 0 {
		t.Fatalf("%+v", vec)
	}
}

func TestAggregations(t *testing.T) {
	db, eng := setupDB(t)
	app(t, db, "temp", []string{"cab", "x1000", "zone", "front"}, 1000, 20)
	app(t, db, "temp", []string{"cab", "x1000", "zone", "rear"}, 1000, 30)
	app(t, db, "temp", []string{"cab", "x1001", "zone", "front"}, 1000, 40)
	cases := map[string]struct {
		n    int
		want float64
	}{
		`sum(temp)`:                {1, 90},
		`avg(temp)`:                {1, 30},
		`min(temp)`:                {1, 20},
		`max(temp)`:                {1, 40},
		`count(temp)`:              {1, 3},
		`sum(temp) by (cab)`:       {2, 50},
		`sum by (cab) (temp)`:      {2, 50},
		`max(temp) without (zone)`: {2, 30},
	}
	for q, c := range cases {
		vec, err := eng.Query(q, 2000)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(vec) != c.n {
			t.Fatalf("%s: %+v", q, vec)
		}
		if vec[0].V != c.want {
			t.Fatalf("%s: got %g want %g", q, vec[0].V, c.want)
		}
	}
}

func TestThresholdComparison(t *testing.T) {
	db, eng := setupDB(t)
	app(t, db, "temp", []string{"cab", "hot"}, 1000, 90)
	app(t, db, "temp", []string{"cab", "cool"}, 1000, 20)
	vec, err := eng.Query(`temp > 75`, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].Labels.Get("cab") != "hot" {
		t.Fatalf("%+v", vec)
	}
	// up == 0 pattern
	app(t, db, "up", []string{"job", "dead"}, 1000, 0)
	app(t, db, "up", []string{"job", "alive"}, 1000, 1)
	vec, _ = eng.Query(`up == 0`, 2000)
	if len(vec) != 1 || vec[0].Labels.Get("job") != "dead" {
		t.Fatalf("%+v", vec)
	}
}

func TestArithmetic(t *testing.T) {
	db, eng := setupDB(t)
	app(t, db, "mem_used", nil, 1000, 50)
	vec, err := eng.Query(`mem_used * 2 + 10`, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 110 {
		t.Fatalf("%+v", vec)
	}
	vec, err = eng.Query(`100 - mem_used`, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if vec[0].V != 50 {
		t.Fatalf("%+v", vec)
	}
	// scalar cmp vector
	vec, err = eng.Query(`100 > mem_used`, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 50 {
		t.Fatalf("%+v", vec)
	}
}

func TestRangeQuery(t *testing.T) {
	db, eng := setupDB(t)
	for i := 0; i <= 10; i++ {
		app(t, db, "g", nil, int64(i*1000), float64(i))
	}
	m, err := eng.QueryRange(`g`, 0, 10_000, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || len(m[0].Points) != 6 {
		t.Fatalf("%+v", m)
	}
	if m[0].Points[5].V != 10 {
		t.Fatalf("%+v", m[0].Points)
	}
}

func BenchmarkInstantThreshold(b *testing.B) {
	db := tsdb.New()
	for i := 0; i < 200; i++ {
		_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", labelName(i)), 1000, float64(i%100))
	}
	eng := NewEngine(db)
	expr, err := Parse(`node_temp_celsius > 75`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Instant(expr, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func labelName(i int) string {
	return "x" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
