package promql

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/tsdb"
)

type promResp struct {
	Status string `json:"status"`
	Error  string `json:"error"`
	Data   struct {
		ResultType string          `json:"resultType"`
		Result     json.RawMessage `json:"result"`
	} `json:"data"`
}

func getProm(t *testing.T, url string) (int, promResp) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out promResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHTTPInstantQuery(t *testing.T) {
	db := tsdb.New()
	_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", "x1"), 10_000, 85)
	srv := httptest.NewServer(NewEngine(db).Handler())
	defer srv.Close()

	code, out := getProm(t, srv.URL+`/api/v1/query?query=node_temp_celsius&time=11`)
	if code != 200 || out.Data.ResultType != "vector" {
		t.Fatalf("%d %+v", code, out)
	}
	var result []struct {
		Metric map[string]string `json:"metric"`
		Value  [2]interface{}    `json:"value"`
	}
	_ = json.Unmarshal(out.Data.Result, &result)
	if len(result) != 1 || result[0].Value[1] != "85" || result[0].Metric["xname"] != "x1" {
		t.Fatalf("%+v", result)
	}

	code, out = getProm(t, srv.URL+`/api/v1/query?query=((((`)
	if code != 400 || out.Status != "error" {
		t.Fatalf("%d %+v", code, out)
	}
}

func TestHTTPQueryRange(t *testing.T) {
	db := tsdb.New()
	for i := 0; i <= 10; i++ {
		_ = db.AppendMetric("g", nil, int64(i*1000), float64(i))
	}
	srv := httptest.NewServer(NewEngine(db).Handler())
	defer srv.Close()
	code, out := getProm(t, srv.URL+`/api/v1/query_range?query=g&start=0&end=10&step=2`)
	if code != 200 || out.Data.ResultType != "matrix" {
		t.Fatalf("%d %+v", code, out)
	}
	var result []struct {
		Values [][2]interface{} `json:"values"`
	}
	_ = json.Unmarshal(out.Data.Result, &result)
	if len(result) != 1 || len(result[0].Values) != 6 {
		t.Fatalf("%+v", result)
	}
	code, _ = getProm(t, srv.URL+`/api/v1/query_range?query=g&step=0`)
	if code != 400 {
		t.Fatalf("zero step accepted: %d", code)
	}
}

func TestTSDBImportEndpoint(t *testing.T) {
	db := tsdb.New()
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	body := "node_temp_celsius{xname=\"x1\"} 45.5 10000\nnode_temp_celsius{xname=\"x2\"} 50 10000\n"
	resp, err := http.Post(srv.URL+"/api/v1/import/prometheus", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var counts map[string]int
	_ = json.NewDecoder(resp.Body).Decode(&counts)
	if counts["accepted"] != 2 {
		t.Fatalf("%v", counts)
	}
	if db.Stats().Series != 2 {
		t.Fatalf("series %d", db.Stats().Series)
	}

	// Missing timestamps are rejected.
	resp, _ = http.Post(srv.URL+"/api/v1/import/prometheus", "text/plain", strings.NewReader("m 1\n"))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("no-timestamp accepted: %d", resp.StatusCode)
	}

	// Metadata endpoints.
	var meta struct {
		Data []string `json:"data"`
	}
	r2, _ := http.Get(srv.URL + "/api/v1/labels")
	_ = json.NewDecoder(r2.Body).Decode(&meta)
	r2.Body.Close()
	found := false
	for _, n := range meta.Data {
		if n == "xname" {
			found = true
		}
	}
	if !found {
		t.Fatalf("labels: %v", meta.Data)
	}
	r3, _ := http.Get(srv.URL + "/api/v1/label_values?name=xname")
	_ = json.NewDecoder(r3.Body).Decode(&meta)
	r3.Body.Close()
	if len(meta.Data) != 2 {
		t.Fatalf("values: %v", meta.Data)
	}
}

func TestParseUnixSecondsFractional(t *testing.T) {
	ts, err := parseUnixSeconds("1646272077.5", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if ts.UnixMilli() != 1646272077500 {
		t.Fatalf("%d", ts.UnixMilli())
	}
	if _, err := parseUnixSeconds("abc", time.Time{}); err == nil {
		t.Fatal("bad time accepted")
	}
	def := time.Unix(42, 0)
	got, err := parseUnixSeconds("", def)
	if err != nil || !got.Equal(def) {
		t.Fatalf("%v %v", got, err)
	}
}
