package omni

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	"shastamon/internal/chaos"
	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/obs"
	"shastamon/internal/wal"
)

func durableConfig(dir string, opt wal.StoreOptions) Config {
	limits := loki.DefaultLimits()
	limits.ChunkOptions = chunkenc.Options{BlockSize: 512, TargetSize: 4 * 1024}
	return Config{
		LokiLimits: limits,
		Shards:     2,
		DataDir:    dir,
		WAL:        opt,
	}
}

// fillWarehouse ingests the same deterministic log + metric load every
// caller compares against.
func fillWarehouse(t *testing.T, w *Warehouse, entries int) {
	t.Helper()
	for e := 0; e < entries; e++ {
		for s := 0; s < 4; s++ {
			ls := labels.FromStrings("job", "crash", "stream", fmt.Sprintf("s%02d", s))
			if err := w.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{
				Timestamp: int64(e) * 1e6,
				Line:      fmt.Sprintf("stream=%d entry=%04d payload=%s", s, e, "x123456789abcdef"),
			}}}}); err != nil {
				t.Fatalf("ingest logs: %v", err)
			}
		}
		if err := w.IngestMetric("node_load1", labels.FromStrings("host", "nid0001"),
			int64(e)*1000, float64(e)); err != nil {
			t.Fatalf("ingest metric: %v", err)
		}
	}
}

// snapshotQueries runs the reference queries whose results must be
// byte-identical across a crash/recover cycle.
func snapshotQueries(t *testing.T, w *Warehouse) (logs, metrics any) {
	t.Helper()
	streams, err := w.QueryLogs(`{job="crash"}`, 0, 1<<62)
	if err != nil {
		t.Fatalf("query logs: %v", err)
	}
	return streams, w.Metrics.Select(nil, 0, 1<<62)
}

func mustOpen(t *testing.T, cfg Config) *Warehouse {
	t.Helper()
	w, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

// TestCrashRecoveryWarehouse is the warehouse-level crash e2e: ingest
// through the façade, abandon the warehouse without Shutdown (the
// SIGKILL image), reopen the same data directory and demand
// byte-identical query results plus resynced ingest counters.
func TestCrashRecoveryWarehouse(t *testing.T) {
	dir := t.TempDir()
	w1 := mustOpen(t, durableConfig(dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}}))
	if rec, ok := w1.Recovery(); !ok || rec.Replayed() != 0 {
		t.Fatalf("fresh dir recovery: %+v %v", rec, ok)
	}
	fillWarehouse(t, w1, 300)
	wantLogs, wantMetrics := snapshotQueries(t, w1)
	wantStats := w1.Stats()

	// No Shutdown: the directory is exactly what a SIGKILL leaves.
	w2 := mustOpen(t, durableConfig(dir, wal.StoreOptions{}))
	rec, _ := w2.Recovery()
	if rec.Logs.Clean || rec.Metrics.Clean || rec.Replayed() == 0 {
		t.Fatalf("expected dirty recovery with replay: %+v", rec)
	}
	gotLogs, gotMetrics := snapshotQueries(t, w2)
	if !reflect.DeepEqual(gotLogs, wantLogs) {
		t.Fatal("recovered log query results differ from pre-crash results")
	}
	if !reflect.DeepEqual(gotMetrics, wantMetrics) {
		t.Fatal("recovered metric query results differ from pre-crash results")
	}
	gotStats := w2.Stats()
	if gotStats.LogMessages != wantStats.LogMessages || gotStats.Samples != wantStats.Samples {
		t.Fatalf("counters not resynced: got %+v want %+v", gotStats, wantStats)
	}

	// The WAL self-metrics are exported, per store.
	fams := w2.ObsMetrics().Gather()
	byName := map[string]bool{}
	for _, f := range fams {
		byName[f.Name] = true
	}
	for _, name := range []string{"shastamon_wal_appends_total", "shastamon_wal_replayed_records_total", "shastamon_wal_degraded"} {
		if !byName[name] {
			t.Fatalf("family %s missing from warehouse registry", name)
		}
	}
}

// TestCrashRecoveryTornTail corrupts the tail of every log-store WAL
// segment before reopening: everything before the corruption survives
// and the corruption counter reports the dropped tail.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	w1 := mustOpen(t, durableConfig(dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}}))
	fillWarehouse(t, w1, 200)

	// Append garbage to the last segment of each logs shard — a torn
	// final record plus trailing junk.
	segs, err := filepath.Glob(filepath.Join(dir, "logs", "wal", "shard-*", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments found: %v", err)
	}
	sort.Strings(segs)
	last := map[string]string{}
	for _, seg := range segs {
		last[filepath.Dir(seg)] = seg
	}
	for _, seg := range last {
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	w2 := mustOpen(t, durableConfig(dir, wal.StoreOptions{}))
	rec, _ := w2.Recovery()
	if rec.Logs.Corrupt == 0 {
		t.Fatalf("corrupt tail not counted: %+v", rec)
	}
	if st := w2.Logs.WALStats(); st.Corrupt == 0 {
		t.Fatalf("corruption counter not carried into stats: %+v", st)
	}
	// All complete records are intact: every entry ingested before the
	// garbage was a complete frame, so nothing is lost.
	gotLogs, _ := snapshotQueries(t, w2)
	wantLogs, _ := snapshotQueries(t, w1)
	if !reflect.DeepEqual(gotLogs, wantLogs) {
		t.Fatal("pre-corruption data lost during torn-tail recovery")
	}
}

// TestCrashRecoveryCleanShutdown: Shutdown leaves CLEAN markers, the
// next Open skips replay, and MaybeCheckpoint honours its interval.
func TestCrashRecoveryCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, wal.StoreOptions{})
	cfg.CheckpointEvery = time.Minute
	w1 := mustOpen(t, cfg)
	fillWarehouse(t, w1, 100)

	base := time.Unix(5000, 0)
	if err := w1.MaybeCheckpoint(base); err != nil { // arms the clock
		t.Fatal(err)
	}
	if err := w1.MaybeCheckpoint(base.Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if n := w1.Logs.WALStats().Checkpoints; n != 0 {
		t.Fatalf("checkpointed before the interval elapsed: %d", n)
	}
	if err := w1.MaybeCheckpoint(base.Add(61 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if n := w1.Logs.WALStats().Checkpoints; n != 1 {
		t.Fatalf("interval checkpoint missing: %d", n)
	}

	wantLogs, wantMetrics := snapshotQueries(t, w1)
	if err := w1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for _, store := range []string{"logs", "metrics"} {
		if _, err := os.Stat(filepath.Join(dir, store, "CLEAN")); err != nil {
			t.Fatalf("CLEAN marker missing for %s: %v", store, err)
		}
	}

	w2 := mustOpen(t, durableConfig(dir, wal.StoreOptions{}))
	rec, _ := w2.Recovery()
	if !rec.Logs.Clean || !rec.Metrics.Clean || rec.Replayed() != 0 {
		t.Fatalf("clean restart should skip replay: %+v", rec)
	}
	gotLogs, gotMetrics := snapshotQueries(t, w2)
	if !reflect.DeepEqual(gotLogs, wantLogs) || !reflect.DeepEqual(gotMetrics, wantMetrics) {
		t.Fatal("clean restart lost data")
	}
}

// TestCrashRecoveryDiskFaultDegrades: persistent ENOSPC on the WAL never
// blocks warehouse ingest — the breaker opens, the degraded gauge rises,
// and once the disk heals and the open window passes, appends resume.
func TestCrashRecoveryDiskFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(7)
	var mu sync.Mutex
	now := time.Unix(9000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	w := mustOpen(t, durableConfig(dir, wal.StoreOptions{
		Options:          wal.Options{Fsync: wal.FsyncAlways, WrapWriter: inj.WriterWrapper("disk.write"), Now: clock},
		BreakerThreshold: 2,
		BreakerOpenFor:   5 * time.Second,
	}))
	fillWarehouse(t, w, 50)
	inj.Set("disk.write", chaos.Fault{ErrProb: 1, Err: syscall.ENOSPC})
	for e := 50; e < 120; e++ {
		ls := labels.FromStrings("job", "crash", "stream", "s00")
		if err := w.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{
			Timestamp: int64(e) * 1e6, Line: "during outage",
		}}}}); err != nil {
			t.Fatalf("ingest blocked by disk fault: %v", err)
		}
		if err := w.IngestMetric("node_load1", labels.FromStrings("host", "nid0001"),
			int64(e)*1000, 1); err != nil {
			t.Fatalf("metric ingest blocked by disk fault: %v", err)
		}
	}
	if !w.WALDegraded() {
		t.Fatalf("warehouse not degraded: logs=%+v metrics=%+v", w.Logs.WALStats(), w.Metrics.WALStats())
	}
	fams := w.ObsMetrics().Gather()
	for _, store := range []string{"logs", "metrics"} {
		if v := obs.Value(fams, "shastamon_wal_degraded", "store", store); v != 1 {
			t.Fatalf("shastamon_wal_degraded{store=%q} = %v, want 1", store, v)
		}
	}

	inj.ClearAll()
	mu.Lock()
	now = now.Add(6 * time.Second)
	mu.Unlock()
	before := w.Logs.WALStats().Appends
	for e := 120; e < 130; e++ {
		ls := labels.FromStrings("job", "crash", "stream", "s00")
		if err := w.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{
			Timestamp: int64(e) * 1e6, Line: "after heal",
		}}}}); err != nil {
			t.Fatal(err)
		}
		if err := w.IngestMetric("node_load1", labels.FromStrings("host", "nid0001"),
			int64(e)*1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	if w.WALDegraded() {
		t.Fatalf("still degraded after heal: logs=%+v metrics=%+v", w.Logs.WALStats(), w.Metrics.WALStats())
	}
	if after := w.Logs.WALStats().Appends; after <= before {
		t.Fatalf("appends did not resume: %d -> %d", before, after)
	}
}
