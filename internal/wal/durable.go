package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"shastamon/internal/resilience"
)

// Durable manages the per-shard logs of one durable store (the log store
// or the TSDB head) plus the degradation machinery: persistent append
// failures trip a circuit breaker and the store falls back to in-memory
// mode — the WAL is skipped, ingest never blocks — until a half-open
// probe finds the disk healthy again.
//
// The healthy fast path is one atomic load: the breaker mutex is only
// touched once an append has actually failed.
type Durable struct {
	root    string
	opt     StoreOptions
	logs    []*Log
	breaker *resilience.Breaker

	// unhealthy flips on the first append failure; while set, every
	// append consults the breaker (closed/half-open keeps probing, open
	// skips) and the first success flips it back.
	unhealthy atomic.Bool

	appends     atomic.Int64
	bytes       atomic.Int64
	errors      atomic.Int64
	skipped     atomic.Int64
	corrupt     atomic.Int64
	replayed    atomic.Int64
	checkpoints atomic.Int64
	spilled     atomic.Int64
}

func (o StoreOptions) withDefaults() StoreOptions {
	o.Options = o.Options.withDefaults()
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerOpenFor <= 0 {
		o.BreakerOpenFor = 10 * time.Second
	}
	return o
}

// ShardDirName renders the canonical per-shard WAL directory name.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// NewDurable opens one log per shard under root (root/shard-00, ...).
// name labels the degradation breaker ("wal:logs", "wal:metrics").
func NewDurable(root, name string, shards int, opt StoreOptions) (*Durable, error) {
	opt = opt.withDefaults()
	d := &Durable{
		root: root,
		opt:  opt,
		breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Name:             name,
			FailureThreshold: opt.BreakerThreshold,
			OpenFor:          opt.BreakerOpenFor,
			Now:              opt.Now,
		}),
	}
	for i := 0; i < shards; i++ {
		l, err := Open(filepath.Join(root, ShardDirName(i)), opt.Options)
		if err != nil {
			for _, prev := range d.logs {
				prev.Close()
			}
			return nil, err
		}
		d.logs = append(d.logs, l)
	}
	return d, nil
}

// Append writes one record to shard i's log, absorbing failures into the
// degradation breaker: a failed append never propagates to the pusher, it
// just widens the potential-loss window until the disk recovers (the next
// successful checkpoint closes the window entirely, since checkpoints
// snapshot the full in-memory state).
func (d *Durable) Append(i int, payload []byte) {
	if d.unhealthy.Load() {
		if d.breaker.Allow() != nil {
			d.skipped.Add(1)
			return
		}
		if err := d.logs[i].Append(payload); err != nil {
			d.errors.Add(1)
			d.breaker.Failure()
			return
		}
		d.breaker.Success()
		d.unhealthy.Store(false)
		d.appends.Add(1)
		d.bytes.Add(int64(len(payload)))
		return
	}
	if err := d.logs[i].Append(payload); err != nil {
		d.errors.Add(1)
		d.breaker.Failure()
		d.unhealthy.Store(true)
		return
	}
	d.appends.Add(1)
	d.bytes.Add(int64(len(payload)))
}

// ReportError feeds a non-append disk failure (spill, checkpoint write)
// into the same degradation machinery.
func (d *Durable) ReportError() {
	d.errors.Add(1)
	d.breaker.Failure()
	d.unhealthy.Store(true)
}

// ReportSuccess records a successful non-append disk operation.
func (d *Durable) ReportSuccess() {
	if d.unhealthy.Load() {
		d.breaker.Success()
		d.unhealthy.Store(false)
	}
}

// Degraded reports whether the store is currently skipping WAL work.
func (d *Durable) Degraded() bool {
	return d.unhealthy.Load() && d.breaker.State() != resilience.Closed
}

// Breaker exposes the degradation breaker (for the united
// shastamon_breaker_state family and clock injection).
func (d *Durable) Breaker() *resilience.Breaker { return d.breaker }

// Shards returns the number of per-shard logs.
func (d *Durable) Shards() int { return len(d.logs) }

// Log returns shard i's log (checkpointer rotation).
func (d *Durable) Log(i int) *Log { return d.logs[i] }

// Root returns the directory holding the per-shard log directories.
func (d *Durable) Root() string { return d.root }

// AddCorrupt / AddReplayed / AddCheckpoints / AddSpilled feed recovery and
// checkpoint accounting from the owning store.
func (d *Durable) AddCorrupt(n int64)     { d.corrupt.Add(n) }
func (d *Durable) AddReplayed(n int64)    { d.replayed.Add(n) }
func (d *Durable) AddCheckpoints(n int64) { d.checkpoints.Add(n) }
func (d *Durable) AddSpilled(n int64)     { d.spilled.Add(n) }

// Sync flushes every shard log.
func (d *Durable) Sync() error {
	var firstErr error
	for _, l := range d.logs {
		if err := l.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close closes every shard log.
func (d *Durable) Close() error {
	var firstErr error
	for _, l := range d.logs {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// RemoveDormantShards deletes shard directories under root other than the
// live ones — leftovers from a run with a larger shard count, fully
// covered by the checkpoint that just completed.
func (d *Durable) RemoveDormantShards() error {
	keep := map[string]bool{}
	for i := range d.logs {
		keep[ShardDirName(i)] = true
	}
	return RemoveDormant(d.root, keep)
}

// DurableStats is the point-in-time durability counter snapshot rendered
// into the shastamon_wal_* metric families.
type DurableStats struct {
	Appends     int64
	Bytes       int64
	Errors      int64
	Skipped     int64
	Corrupt     int64
	Replayed    int64
	Checkpoints int64
	Spilled     int64
	Fsyncs      int64
	Segments    int64 // rotations across shards
	// Degraded is 1 while the store is skipping WAL work, else 0.
	Degraded float64
	// BreakerState is the 0/1/2 closed/half-open/open gauge convention.
	BreakerState float64
}

// Stats snapshots the durability counters.
func (d *Durable) Stats() DurableStats {
	st := DurableStats{
		Appends:      d.appends.Load(),
		Bytes:        d.bytes.Load(),
		Errors:       d.errors.Load(),
		Skipped:      d.skipped.Load(),
		Corrupt:      d.corrupt.Load(),
		Replayed:     d.replayed.Load(),
		Checkpoints:  d.checkpoints.Load(),
		Spilled:      d.spilled.Load(),
		BreakerState: d.breaker.StateValue(),
	}
	if d.Degraded() {
		st.Degraded = 1
	}
	for _, l := range d.logs {
		ls := l.Stats()
		st.Fsyncs += ls.Syncs
		st.Segments += ls.Rotates
	}
	return st
}

// DropSegmentsBefore removes segments with index < idx from a WAL
// directory that has no open Log — recovery prunes segments already
// covered by the checkpoint before replaying.
func DropSegmentsBefore(dir string, idx int) error {
	idxs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, n := range idxs {
		if n >= idx {
			break
		}
		if err := os.Remove(filepath.Join(dir, segmentName(n))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
