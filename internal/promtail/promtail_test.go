package promtail

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/logql"
	"shastamon/internal/loki"
)

func newCollector(t *testing.T, store *loki.Store, batch int) *Promtail {
	t.Helper()
	p, err := New(Config{Push: store.Push, BatchSize: batch, BatchWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil push accepted")
	}
}

func TestHandleStaticLabelsAndJob(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 1)
	cfg := ScrapeConfig{Job: "varlogs", StaticLabels: map[string]string{"cluster": "perlmutter"}}
	if err := p.Handle(cfg, time.Unix(1, 0), "hello"); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Select(nil, 0, 1<<62)
	if len(got) != 1 || got[0].Labels.Get("job") != "varlogs" || got[0].Labels.Get("cluster") != "perlmutter" {
		t.Fatalf("%+v", got)
	}
}

func TestRegexAndLabelsStages(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 1)
	re, err := Regex(`level=(?P<level>\w+)`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScrapeConfig{Job: "app", Stages: []Stage{re, Labels("level")}}
	_ = p.Handle(cfg, time.Unix(1, 0), "level=error something broke")
	_ = p.Handle(cfg, time.Unix(2, 0), "no level here")
	eng := logql.NewEngine(store)
	streams, err := eng.QueryLogs(`{level="error"}`, 0, 1<<62)
	if err != nil || len(streams) != 1 {
		t.Fatalf("%v %v", streams, err)
	}
	// The unmatched line keeps only the job label.
	streams, _ = eng.QueryLogs(`{job="app"}`, 0, 1<<62)
	total := 0
	for _, s := range streams {
		total += len(s.Entries)
	}
	if total != 2 {
		t.Fatalf("total entries %d", total)
	}
}

func TestJSONOutputTimestampStages(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 1)
	cfg := ScrapeConfig{
		Job: "events",
		Stages: []Stage{
			JSON("msg", "ts", "level"),
			Labels("level"),
			Timestamp("ts", time.RFC3339),
			Output("msg"),
		},
	}
	line := `{"ts":"2022-03-03T01:47:57Z","level":"warn","msg":"leak detected","noise":123}`
	if err := p.Handle(cfg, time.Unix(1, 0), line); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Select(nil, 0, 1<<62)
	if len(got) != 1 {
		t.Fatalf("%+v", got)
	}
	e := got[0].Entries[0]
	if e.Line != "leak detected" {
		t.Fatalf("line %q", e.Line)
	}
	if e.Timestamp != time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC).UnixNano() {
		t.Fatalf("ts %d", e.Timestamp)
	}
	if got[0].Labels.Get("level") != "warn" {
		t.Fatalf("%v", got[0].Labels)
	}
}

func TestDropKeepStages(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 1)
	drop, _ := Drop(`DEBUG`)
	keep, _ := Keep(`nid\d+`)
	cfg := ScrapeConfig{Job: "x", Stages: []Stage{drop, keep}}
	_ = p.Handle(cfg, time.Unix(1, 0), "DEBUG nid001 noisy")   // dropped
	_ = p.Handle(cfg, time.Unix(2, 0), "INFO host17 no match") // dropped by keep
	_ = p.Handle(cfg, time.Unix(3, 0), "ERROR nid002 kept")
	got, _ := store.Select(nil, 0, 1<<62)
	if len(got) != 1 || len(got[0].Entries) != 1 || !strings.Contains(got[0].Entries[0].Line, "kept") {
		t.Fatalf("%+v", got)
	}
	_, dropped := p.Stats()
	if dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestTemplateStage(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 1)
	re, _ := Regex(`(?P<a>\w+):(?P<b>\w+)`)
	cfg := ScrapeConfig{Job: "x", Stages: []Stage{re, Template("combined", "{{.a}}-{{.b}}"), Labels("combined")}}
	_ = p.Handle(cfg, time.Unix(1, 0), "foo:bar")
	got, _ := store.Select(nil, 0, 1<<62)
	if got[0].Labels.Get("combined") != "foo-bar" {
		t.Fatalf("%v", got[0].Labels)
	}
}

func TestStageErrors(t *testing.T) {
	if _, err := Regex("("); err == nil {
		t.Fatal("bad regex accepted")
	}
	if _, err := Drop("("); err == nil {
		t.Fatal("bad drop accepted")
	}
	if _, err := Keep("("); err == nil {
		t.Fatal("bad keep accepted")
	}
}

func TestBatching(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 10)
	cfg := ScrapeConfig{Job: "x"}
	for i := 0; i < 9; i++ {
		_ = p.Handle(cfg, time.Unix(int64(i), 0), "line")
	}
	if store.Stats().Entries != 0 {
		t.Fatal("pushed before batch full")
	}
	_ = p.Handle(cfg, time.Unix(9, 0), "line")
	if store.Stats().Entries != 10 {
		t.Fatalf("entries = %d", store.Stats().Entries)
	}
	sent, _ := p.Stats()
	if sent != 10 {
		t.Fatalf("sent = %d", sent)
	}
}

func TestTailReaderToHTTPLoki(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	srv := httptest.NewServer(store.Handler())
	defer srv.Close()
	client := loki.NewClient(srv.URL, nil)
	p, err := New(Config{Push: client.Push, BatchSize: 4, BatchWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	input := strings.Join([]string{
		"Mar  3 01:47:57 nid001234 mmfs: GPFS healthy",
		"Mar  3 01:47:58 nid001234 mmfs: GPFS: Disk failure detected on rg001",
		"Mar  3 01:47:59 nid001234 sshd: Accepted publickey",
	}, "\n")
	ts := time.Unix(0, 0)
	i := int64(0)
	now := func() time.Time { i++; return ts.Add(time.Duration(i) * time.Second) }
	cfg := ScrapeConfig{Job: "syslog", StaticLabels: map[string]string{"cluster": "perlmutter"}}
	if err := p.Tail(context.Background(), cfg, strings.NewReader(input), now); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Select(nil, 0, 1<<62)
	total := 0
	for _, s := range got {
		total += len(s.Entries)
	}
	if total != 3 {
		t.Fatalf("entries = %d", total)
	}
}

func TestTailContextCancel(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	p := newCollector(t, store, 100)
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := newBlockingPipe()
	done := make(chan error, 1)
	go func() {
		done <- p.Tail(ctx, ScrapeConfig{Job: "x"}, pr, nil)
	}()
	pw <- "one line\n"
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tail did not stop")
	}
	// The partial batch was flushed on cancel.
	if store.Stats().Entries != 1 {
		t.Fatalf("entries = %d", store.Stats().Entries)
	}
}

// newBlockingPipe returns a reader fed by a string channel that never
// EOFs, for cancellation tests.
func newBlockingPipe() (*chanReader, chan string) {
	ch := make(chan string, 8)
	return &chanReader{ch: ch}, ch
}

type chanReader struct {
	ch  chan string
	buf []byte
}

func (r *chanReader) Read(p []byte) (int, error) {
	if len(r.buf) == 0 {
		s, ok := <-r.ch
		if !ok {
			return 0, context.Canceled
		}
		r.buf = []byte(s)
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}
