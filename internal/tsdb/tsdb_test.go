package tsdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"shastamon/internal/labels"
)

func metric(name string, kv ...string) labels.Labels {
	return labels.FromStrings(kv...).With(MetricNameLabel, name)
}

func TestAppendSelect(t *testing.T) {
	db := New()
	ls := metric("node_temp_celsius", "xname", "x1000c0s0b0n0")
	for i := 0; i < 10; i++ {
		if err := db.Append(ls, int64(i*1000), float64(20+i)); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Select(nil, 2000, 5000)
	if len(got) != 1 || len(got[0].Samples) != 4 {
		t.Fatalf("%+v", got)
	}
	if got[0].Samples[0].V != 22 {
		t.Fatalf("%+v", got[0].Samples)
	}
}

func TestAppendRequiresName(t *testing.T) {
	db := New()
	if err := db.Append(labels.FromStrings("a", "b"), 1, 1); err == nil {
		t.Fatal("append without __name__ accepted")
	}
}

func TestAppendMetric(t *testing.T) {
	db := New()
	if err := db.AppendMetric("up", labels.FromStrings("job", "node"), 1000, 1); err != nil {
		t.Fatal(err)
	}
	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, MetricNameLabel, "up")}
	if got := db.Select(sel, 0, 2000); len(got) != 1 {
		t.Fatalf("%+v", got)
	}
}

func TestOutOfOrderDropped(t *testing.T) {
	db := New()
	ls := metric("m")
	_ = db.Append(ls, 100, 1)
	if err := db.Append(ls, 50, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v", err)
	}
	if db.Stats().Dropped != 1 {
		t.Fatal("dropped counter")
	}
}

func TestDuplicateTimestampOverwrites(t *testing.T) {
	db := New()
	ls := metric("m")
	_ = db.Append(ls, 100, 1)
	_ = db.Append(ls, 100, 9)
	got := db.Select(nil, 0, 200)
	if len(got[0].Samples) != 1 || got[0].Samples[0].V != 9 {
		t.Fatalf("%+v", got[0].Samples)
	}
}

func TestLatestBefore(t *testing.T) {
	db := New()
	ls := metric("m")
	_ = db.Append(ls, 1000, 1)
	_ = db.Append(ls, 2000, 2)
	got := db.LatestBefore(nil, 2500, 5000)
	if len(got) != 1 || got[0].Samples[0].V != 2 {
		t.Fatalf("%+v", got)
	}
	// Outside the lookback window nothing is returned.
	got = db.LatestBefore(nil, 10000, 1000)
	if len(got) != 0 {
		t.Fatalf("stale sample returned: %+v", got)
	}
	// Before any sample: nothing.
	got = db.LatestBefore(nil, 500, 5000)
	if len(got) != 0 {
		t.Fatalf("%+v", got)
	}
}

func TestSelectByMatcher(t *testing.T) {
	db := New()
	for i := 0; i < 4; i++ {
		_ = db.Append(metric("m", "node", fmt.Sprintf("n%d", i)), 1000, float64(i))
	}
	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchRegexp, "node", "n[01]")}
	if got := db.Select(sel, 0, 2000); len(got) != 2 {
		t.Fatalf("%+v", got)
	}
}

func TestDeleteBefore(t *testing.T) {
	db := New()
	old := metric("m", "age", "old")
	newer := metric("m", "age", "new")
	_ = db.Append(old, 1000, 1)
	_ = db.Append(newer, 5000, 1)
	_ = db.Append(newer, 9000, 2)
	dropped := db.DeleteBefore(5000)
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
	if got := db.Series(nil); len(got) != 1 {
		t.Fatalf("series: %v", got)
	}
	if db.Stats().Series != 1 {
		t.Fatalf("stats: %+v", db.Stats())
	}
}

func TestLabelValues(t *testing.T) {
	db := New()
	_ = db.Append(metric("m", "zone", "a"), 1, 1)
	_ = db.Append(metric("m", "zone", "b"), 1, 1)
	if got := db.LabelValues("zone"); len(got) != 2 || got[0] != "a" {
		t.Fatalf("%v", got)
	}
}

func TestConcurrentAppend(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ls := metric("m", "g", fmt.Sprintf("%d", g))
			for i := 0; i < 1000; i++ {
				_ = db.Append(ls, int64(i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	st := db.Stats()
	if st.Series != 8 || st.Samples != 8000 {
		t.Fatalf("%+v", st)
	}
}

// Property: Select returns exactly the samples with mint <= T <= maxt in
// order.
func TestPropertySelectWindow(t *testing.T) {
	f := func(lo, hi uint16) bool {
		db := New()
		ls := metric("m")
		for i := 0; i < 500; i++ {
			_ = db.Append(ls, int64(i), float64(i))
		}
		mint, maxt := int64(lo%500), int64(hi%500)
		if mint > maxt {
			mint, maxt = maxt, mint
		}
		got := db.Select(nil, mint, maxt)
		if len(got) != 1 {
			return false
		}
		ss := got[0].Samples
		if int64(len(ss)) != maxt-mint+1 {
			return false
		}
		return ss[0].T == mint && ss[len(ss)-1].T == maxt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	db := New()
	ls := metric("node_cpu_seconds_total", "cpu", "0", "mode", "idle", "xname", "x1000c0s0b0n0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := db.Append(ls, int64(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRecent(b *testing.B) {
	db := New()
	for s := 0; s < 100; s++ {
		ls := metric("m", "node", fmt.Sprintf("n%03d", s))
		for i := 0; i < 1000; i++ {
			_ = db.Append(ls, int64(i*1000), float64(i))
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got := db.Select(nil, 900_000, 1_000_000)
		if len(got) != 100 {
			b.Fatal("bad select")
		}
	}
}

func TestDownsampleAvg(t *testing.T) {
	db := New()
	ls := metric("m")
	// Samples every 10s for 10 minutes: 60 samples.
	for i := 0; i < 60; i++ {
		_ = db.Append(ls, int64(i)*10_000, float64(i))
	}
	// Downsample everything before 5 minutes to 1-minute resolution.
	gone, err := db.Downsample(300_000, time.Minute, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	// 30 old samples -> 5 windows: 25 eliminated.
	if gone != 25 {
		t.Fatalf("eliminated = %d", gone)
	}
	got := db.Select(nil, 0, 600_000)
	if len(got) != 1 || len(got[0].Samples) != 5+30 {
		t.Fatalf("samples = %d", len(got[0].Samples))
	}
	// First window covers values 0..5 (t=0..50s): avg 2.5.
	if got[0].Samples[0].T != 0 || got[0].Samples[0].V != 2.5 {
		t.Fatalf("%+v", got[0].Samples[0])
	}
	// Recent samples untouched and ordering preserved.
	ss := got[0].Samples
	for i := 1; i < len(ss); i++ {
		if ss[i].T <= ss[i-1].T {
			t.Fatalf("unordered after downsample: %+v", ss)
		}
	}
	// Appends continue to work afterwards.
	if err := db.Append(ls, 700_000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDownsampleKinds(t *testing.T) {
	vals := []float64{1, 5, 3}
	cases := map[AggKind]float64{AggAvg: 3, AggMin: 1, AggMax: 5, AggLast: 3}
	for kind, want := range cases {
		db := New()
		ls := metric("m")
		for i, v := range vals {
			_ = db.Append(ls, int64(i)*1000, v)
		}
		if _, err := db.Downsample(10_000, time.Minute, kind); err != nil {
			t.Fatal(err)
		}
		got := db.Select(nil, 0, 10_000)
		if len(got[0].Samples) != 1 || got[0].Samples[0].V != want {
			t.Fatalf("kind %d: %+v", kind, got[0].Samples)
		}
	}
}

func TestDownsampleValidation(t *testing.T) {
	db := New()
	if _, err := db.Downsample(1000, 0, AggAvg); err == nil {
		t.Fatal("zero resolution accepted")
	}
	// A series with one old sample is left alone.
	ls := metric("m")
	_ = db.Append(ls, 0, 1)
	gone, err := db.Downsample(1000, time.Minute, AggAvg)
	if err != nil || gone != 0 {
		t.Fatalf("%d %v", gone, err)
	}
}
