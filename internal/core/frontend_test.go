package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/stats"
)

// TestMetaAlertQueryQueueSaturated is the load-shedding acceptance
// scenario: with the frontend squeezed to one slot and no wait line, a
// range query arriving behind a running one is rejected with an explicit
// ErrQueueFull (the 429 path) instead of queueing, and the
// ShastamonQueryQueueSaturated meta-rule carries the shed through
// vmalert -> Alertmanager -> Slack.
func TestMetaAlertQueryQueueSaturated(t *testing.T) {
	p := newPipeline(t, Options{
		MetaAlerts: true,
		Frontend:   frontend.Config{MaxConcurrent: 1, MaxQueueDepth: -1},
	})
	base := time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)
	mustTick(t, p, base)

	f := p.Warehouse.Frontend
	saturate := func() {
		t.Helper()
		block := make(chan struct{})
		started := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			_, err := f.QueryRange(context.Background(), frontend.Request{
				Engine: "logql", Query: "blocker", Start: 0, End: 0, Step: 1,
				Eval: func(ctx context.Context, start, end int64, shard int) (frontend.Matrix, error) {
					close(started)
					<-block
					return frontend.Matrix{}, nil
				},
			})
			done <- err
		}()
		<-started
		_, err := p.Warehouse.LogQL.QueryRangeContext(context.Background(),
			`count_over_time({data_type="syslog"}[1m])`, 0, 60e9, time.Minute)
		if !errors.Is(err, stats.ErrQueueFull) {
			t.Fatalf("saturated frontend returned %v, want ErrQueueFull", err)
		}
		close(block)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Two sheds across a scrape boundary so the counter visibly increases
	// inside the rule's 5m window.
	saturate()
	mustTick(t, p, base.Add(5*time.Second))
	saturate()
	if f.Rejected() != 2 {
		t.Fatalf("Rejected() = %d, want 2", f.Rejected())
	}

	found := false
	for ts, deadline := base.Add(10*time.Second), base.Add(3*time.Minute); ts.Before(deadline); ts = ts.Add(5 * time.Second) {
		mustTick(t, p, ts)
		if slackTitles(p)["ShastamonQueryQueueSaturated"] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ShastamonQueryQueueSaturated never reached Slack; titles = %v", slackTitles(p))
	}
}

// TestMetaAlertQueryCacheThrash undersizes the results cache and runs a
// wide set of distinct dashboard queries so evictions churn past the
// rule's threshold; the ShastamonQueryCacheThrash meta-rule must land in
// Slack through the same path as every other self-alert.
func TestMetaAlertQueryCacheThrash(t *testing.T) {
	p := newPipeline(t, Options{
		MetaAlerts: true,
		// A few hundred bytes: every cached split evicts a predecessor.
		Frontend: frontend.Config{CacheBytes: 512},
	})
	base := time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)
	mustTick(t, p, base)

	// A corpus of one stream per app, an hour in the past so cached
	// windows sit far behind the mutable head.
	old := base.Add(-time.Hour)
	for app := 0; app < 40; app++ {
		var entries []loki.Entry
		for i := 0; i < 10; i++ {
			entries = append(entries, loki.Entry{
				Timestamp: old.UnixNano() + int64(i)*30e9,
				Line:      "tick",
			})
		}
		if err := p.Warehouse.IngestLogs([]loki.PushStream{{
			Labels:  labels.FromStrings("app", fmt.Sprintf("thrash%d", app)),
			Entries: entries,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	churn := func() {
		t.Helper()
		for app := 0; app < 40; app++ {
			q := fmt.Sprintf(`count_over_time({app="thrash%d"}[1m])`, app)
			if _, err := p.Warehouse.LogQL.QueryRangeContext(context.Background(),
				q, old.UnixNano(), old.Add(10*time.Minute).UnixNano(), time.Minute); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn()
	mustTick(t, p, base.Add(5*time.Second))
	churn()
	if st := p.Warehouse.Frontend.CacheStats(); st.Evictions <= 64 {
		t.Fatalf("churn produced only %d evictions, need > 64 for the rule: %+v", st.Evictions, st)
	}

	found := false
	for ts, deadline := base.Add(10*time.Second), base.Add(3*time.Minute); ts.Before(deadline); ts = ts.Add(5 * time.Second) {
		mustTick(t, p, ts)
		if slackTitles(p)["ShastamonQueryCacheThrash"] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ShastamonQueryCacheThrash never reached Slack; titles = %v", slackTitles(p))
	}
}
