// Command logcli is the command-line LogQL client the paper mentions
// ("queries can be executed and visualized using Grafana or a command
// line interface, LogCLI"). It runs log and metric queries against a
// self-contained demo store, or against data loaded from a JSON file of
// Loki push streams.
//
//	logcli -q '{data_type="redfish_event"} |= "CabinetLeakDetected" | json'
//	logcli -load dump.json -q 'sum(count_over_time({app="x"}[5m]))' -instant
//	logcli -q '{data_type="syslog"}' -stats              # + query statistics table
//	logcli -q '{data_type="syslog"}' -stats -output jsonl  # raw statistics JSON
//	logcli -self -addr http://127.0.0.1:8080            # pipeline self-metrics
//	logcli -self -addr http://127.0.0.1:8080 -q breaker_state
//	logcli -heatmap -addr http://127.0.0.1:8080 -since 30m -step 2m
//
// The demo store is preloaded with the paper's two case-study events so
// the figures' queries work out of the box.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/loki"
	"shastamon/internal/stats"
)

type dumpStream struct {
	Stream map[string]string `json:"stream"`
	Values [][2]string       `json:"values"`
}

func loadDump(store *loki.Store, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var streams []dumpStream
	if err := json.Unmarshal(data, &streams); err != nil {
		return fmt.Errorf("logcli: %s: %w", path, err)
	}
	for _, ds := range streams {
		ps := loki.PushStream{Labels: labels.FromMap(ds.Stream)}
		for _, v := range ds.Values {
			var ts int64
			if _, err := fmt.Sscanf(v[0], "%d", &ts); err != nil {
				return fmt.Errorf("logcli: bad timestamp %q", v[0])
			}
			ps.Entries = append(ps.Entries, loki.Entry{Timestamp: ts, Line: v[1]})
		}
		if err := store.Push([]loki.PushStream{ps}); err != nil {
			return err
		}
	}
	return nil
}

func demoStore() (*loki.Store, error) {
	store := loki.NewStore(loki.DefaultLimits())
	leakTS := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC).UnixNano()
	err := store.Push([]loki.PushStream{
		{
			Labels: labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event"),
			Entries: []loki.Entry{{
				Timestamp: leakTS,
				Line:      `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}`,
			}},
		},
		{
			Labels: labels.FromStrings("app", "fabric_manager_monitor", "cluster", "perlmutter"),
			Entries: []loki.Entry{{
				Timestamp: leakTS + int64(time.Minute),
				Line:      "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN",
			}},
		},
	})
	return store, err
}

func main() {
	query := flag.String("q", "", "LogQL query (required)")
	load := flag.String("load", "", "JSON file of Loki push streams to load instead of the demo data")
	instant := flag.Bool("instant", false, "run a metric query at -at instead of a log query")
	at := flag.String("at", "2022-03-03T02:00:00Z", "instant query evaluation time (RFC3339)")
	since := flag.Duration("since", 24*time.Hour, "log query lookback from -at")
	addr := flag.String("addr", "", "query a remote Loki API (e.g. omnid) instead of the local demo store")
	self := flag.Bool("self", false, "query the pipeline's shastamon_* self-metrics over -addr's PromQL API; -q may be a bare family name (shastamon_ prefix optional) or empty for the default set")
	heatmap := flag.Bool("heatmap", false, "render -addr's node × time error heatmap (GET /api/v1/heatmap) over -since at -step")
	step := flag.Duration("step", 2*time.Minute, "heatmap bucket width")
	showStats := flag.Bool("stats", false, "print query statistics (bytes/lines scanned, cache hits, timings) after the result")
	output := flag.String("output", "", `statistics output format: "" (human table, stderr) or "jsonl" (raw statistics JSON, stdout)`)
	noCache := flag.Bool("no-cache", false, "bypass the query frontend's results cache (A/B latency measurement)")
	flag.Parse()
	if *output != "" && *output != "jsonl" {
		fatal(fmt.Errorf("bad -output %q (want \"\" or \"jsonl\")", *output))
	}
	if *heatmap {
		if *addr == "" {
			fatal(fmt.Errorf("-heatmap needs -addr (the omnid status listener)"))
		}
		if err := queryHeatmap(*addr, *since, *step); err != nil {
			fatal(err)
		}
		return
	}
	if *self {
		if *addr == "" {
			fatal(fmt.Errorf("-self needs -addr (the omnid status listener)"))
		}
		if err := querySelf(*addr, *at, *query); err != nil {
			fatal(err)
		}
		return
	}
	if *query == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *addr != "" {
		if err := queryRemote(*addr, *query, *at, *since, *instant, *showStats, *noCache, *output); err != nil {
			fatal(err)
		}
		return
	}

	store, err := demoStore()
	if err != nil {
		fatal(err)
	}
	if *load != "" {
		store = loki.NewStore(loki.DefaultLimits())
		if err := loadDump(store, *load); err != nil {
			fatal(err)
		}
	}
	engine := logql.NewEngine(store)
	end, err := time.Parse(time.RFC3339, *at)
	if err != nil {
		fatal(fmt.Errorf("bad -at: %w", err))
	}

	ctx, sc := stats.NewContext(context.Background())
	if *noCache {
		ctx = frontend.WithoutCache(ctx)
	}
	if *instant {
		vec, err := engine.QueryInstantContext(ctx, *query, end.UnixNano())
		if err != nil {
			fatal(err)
		}
		for _, s := range vec {
			fmt.Printf("%s => %g\n", s.Labels, s.V)
		}
		if len(vec) == 0 {
			fmt.Println("(empty vector)")
		}
		finishStats(sc, *showStats, *output)
		return
	}
	streams, err := engine.QueryLogsContext(ctx, *query, end.Add(-*since).UnixNano(), end.UnixNano())
	if err != nil {
		fatal(err)
	}
	n := 0
	for _, s := range streams {
		fmt.Println(s.Labels)
		for _, e := range s.Entries {
			fmt.Printf("  %s  %s\n", time.Unix(0, e.Timestamp).UTC().Format(time.RFC3339), e.Line)
			n++
		}
	}
	fmt.Printf("(%d entries, %d streams)\n", n, len(streams))
	finishStats(sc, *showStats, *output)
}

func finishStats(sc *stats.Context, show bool, output string) {
	if !show {
		return
	}
	sc.Finish()
	printStats(sc.Snapshot(), output)
}

// printStats renders a statistics snapshot: jsonl emits the raw JSON on
// stdout (machine-readable, one line); the default is a human table on
// stderr so piped query output stays clean.
func printStats(snap stats.Snapshot, output string) {
	if output == "jsonl" {
		b, _ := json.Marshal(snap)
		fmt.Println(string(b))
		return
	}
	su, st := snap.Summary, snap.Store
	w := os.Stderr
	fmt.Fprintln(w, "-- query statistics --")
	fmt.Fprintf(w, "bytes processed      : %d (%d/s)\n", su.TotalBytesProcessed, su.BytesProcessedPerSecond)
	fmt.Fprintf(w, "lines processed      : %d (%d/s)\n", su.TotalLinesProcessed, su.LinesProcessedPerSecond)
	fmt.Fprintf(w, "entries returned     : %d\n", su.TotalEntriesReturned)
	fmt.Fprintf(w, "streams selected     : %d\n", st.StreamsSelected)
	fmt.Fprintf(w, "chunks opened        : %d\n", st.ChunksOpened)
	fmt.Fprintf(w, "blocks decompressed  : %d (%d bytes)\n", st.BlocksDecompressed, st.DecompressedBytes)
	fmt.Fprintf(w, "chunk cache          : %d hit / %d miss\n", st.CacheHits, st.CacheMisses)
	fe := snap.Frontend
	fmt.Fprintf(w, "result cache         : %d hit / %d miss (%d bytes served)\n",
		fe.ResultCacheHits, fe.ResultCacheMisses, fe.ResultCacheHitBytes)
	fmt.Fprintf(w, "shards / splits      : %d / %d\n", su.Shards, su.Splits)
	fmt.Fprintf(w, "queue / exec / total : %.3fms / %.3fms / %.3fms\n",
		su.QueueTime*1e3, su.ExecTime*1e3, su.TotalTime*1e3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logcli:", err)
	os.Exit(1)
}
