package loki

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
)

// TestConcurrentPushSelectFlush exercises the sharded store the way the
// pipeline does under load: many pushers on distinct streams while
// readers, flushers and retention run concurrently. Run under -race via
// verify.sh.
func TestConcurrentPushSelectFlush(t *testing.T) {
	limits := DefaultLimits()
	limits.Shards = 4
	s := NewStore(limits)

	const (
		pushers          = 8
		entriesPerPusher = 500
	)
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ls := labels.FromStrings("hostname", fmt.Sprintf("nid%06d", p), "data_type", "syslog")
			for i := 0; i < entriesPerPusher; i++ {
				err := s.Push([]PushStream{{
					Labels:  ls,
					Entries: []Entry{{Timestamp: int64(i) * 1e6, Line: fmt.Sprintf("p%d line %d", p, i)}},
				}})
				if err != nil {
					t.Errorf("pusher %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	// Readers, flusher, stats and retention race the pushers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, "data_type", "syslog")}
			for i := 0; i < 50; i++ {
				if _, err := s.Select(sel, 0, 1<<62); err != nil {
					t.Errorf("select: %v", err)
					return
				}
				_ = s.Stats()
				_ = s.Series(nil)
				_ = s.LabelValues("hostname")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := s.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			s.DeleteBefore(-1) // no-op horizon; exercises the locking
		}
	}()
	wg.Wait()

	st := s.Stats()
	if st.Streams != pushers {
		t.Fatalf("streams = %d, want %d", st.Streams, pushers)
	}
	if want := int64(pushers * entriesPerPusher); st.Entries != want {
		t.Fatalf("entries = %d, want %d", st.Entries, want)
	}
	got, err := s.Select(nil, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, str := range got {
		for i := 1; i < len(str.Entries); i++ {
			if str.Entries[i].Timestamp < str.Entries[i-1].Timestamp {
				t.Fatalf("stream %s out of order at %d", str.Labels, i)
			}
		}
		total += len(str.Entries)
	}
	if total != pushers*entriesPerPusher {
		t.Fatalf("selected %d entries, want %d", total, pushers*entriesPerPusher)
	}
}

// TestOutOfOrderRejectionSharded checks reject-and-count survives the
// sharded rewrite, including under concurrent pushes to the same stream.
func TestOutOfOrderRejectionSharded(t *testing.T) {
	limits := DefaultLimits()
	limits.Shards = 4
	s := NewStore(limits)
	ls := labels.FromStrings("hostname", "nid000001")
	if err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{Timestamp: 100, Line: "a"}}}}); err != nil {
		t.Fatal(err)
	}
	err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{Timestamp: 50, Line: "late"}}}})
	if !errors.Is(err, chunkenc.ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	st := s.Stats()
	if st.DiscardedOOO != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMaxStreamsExactAcrossShards hammers stream creation from many
// goroutines and requires the limit to hold exactly: reservation is a
// store-wide atomic, so no interleaving may overshoot it.
func TestMaxStreamsExactAcrossShards(t *testing.T) {
	limits := DefaultLimits()
	limits.Shards = 8
	limits.MaxStreams = 50
	s := NewStore(limits)

	const (
		creators = 16
		attempts = 50
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected := 0
	for c := 0; c < creators; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				ls := labels.FromStrings("creator", fmt.Sprintf("c%d", c), "stream", fmt.Sprintf("s%d", i))
				err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{Timestamp: 1, Line: "x"}}}})
				if errors.Is(err, ErrMaxStreams) {
					mu.Lock()
					rejected++
					mu.Unlock()
				} else if err != nil {
					t.Errorf("creator %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if st.Streams != limits.MaxStreams {
		t.Fatalf("streams = %d, want exactly %d", st.Streams, limits.MaxStreams)
	}
	if got := len(s.Series(nil)); got != limits.MaxStreams {
		t.Fatalf("series = %d, want %d", got, limits.MaxStreams)
	}
	if want := creators*attempts - limits.MaxStreams; rejected != want {
		t.Fatalf("rejected = %d, want %d", rejected, want)
	}
	// Slots freed by retention become available again.
	dropped := s.DeleteBefore(1 << 62)
	if dropped == 0 {
		t.Fatalf("retention dropped nothing")
	}
	if st := s.Stats(); st.Streams != 0 {
		t.Fatalf("streams after delete = %d, want 0", st.Streams)
	}
	if err := s.Push([]PushStream{{Labels: labels.FromStrings("fresh", "yes"),
		Entries: []Entry{{Timestamp: 1, Line: "x"}}}}); err != nil {
		t.Fatalf("push after retention: %v", err)
	}
}

// TestShardPushBalance sanity-checks the fingerprint striping: many
// distinct streams should not all land on one shard.
func TestShardPushBalance(t *testing.T) {
	limits := DefaultLimits()
	limits.Shards = 8
	s := NewStore(limits)
	for i := 0; i < 256; i++ {
		ls := labels.FromStrings("hostname", fmt.Sprintf("nid%06d", i))
		if err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{Timestamp: 1, Line: "x"}}}}); err != nil {
			t.Fatal(err)
		}
	}
	pushes := s.ShardPushes()
	if len(pushes) != 8 {
		t.Fatalf("shards = %d", len(pushes))
	}
	busy := 0
	var total int64
	for _, n := range pushes {
		if n > 0 {
			busy++
		}
		total += n
	}
	if total != 256 {
		t.Fatalf("total shard pushes = %d, want 256", total)
	}
	if busy < 4 {
		t.Fatalf("only %d/8 shards saw pushes; striping is degenerate: %v", busy, pushes)
	}
}

// TestChunkCacheServesRepeatSelects verifies the second identical Select
// hits the decompression cache (the ruler re-reads every tick).
func TestChunkCacheServesRepeatSelects(t *testing.T) {
	limits := DefaultLimits()
	limits.ChunkOptions = chunkenc.Options{BlockSize: 1024}
	s := NewStore(limits)
	ls := labels.FromStrings("app", "x")
	entries := make([]Entry, 2000)
	for i := range entries {
		entries[i] = Entry{Timestamp: int64(i) * 1e6, Line: fmt.Sprintf("event %06d with some padding text", i)}
	}
	if err := s.Push([]PushStream{{Labels: ls, Entries: entries}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		res, err := s.Select(nil, 0, 1<<62)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || len(res[0].Entries) != 2000 {
			t.Fatalf("pass %d: bad result", pass)
		}
	}
	cs := s.CacheStats()
	if cs.Hits == 0 {
		t.Fatalf("repeat select produced no cache hits: %+v", cs)
	}

	// A disabled cache still answers correctly.
	limits.ChunkCacheBytes = -1
	s2 := NewStore(limits)
	if err := s2.Push([]PushStream{{Labels: ls, Entries: entries}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Select(nil, 0, 1<<62)
	if err != nil || len(res) != 1 || len(res[0].Entries) != 2000 {
		t.Fatalf("uncached select: %d %v", len(res), err)
	}
	if cs := s2.CacheStats(); cs != (chunkenc.CacheStats{}) {
		t.Fatalf("disabled cache counted: %+v", cs)
	}
}
