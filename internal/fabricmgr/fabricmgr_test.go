package fabricmgr

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shastamon/internal/shasta"
)

func testCluster(t *testing.T) *shasta.Cluster {
	t.Helper()
	c, err := shasta.NewCluster(shasta.Config{
		Name: "perlmutter", Cabinets: []int{1002},
		ChassisPerCabinet: 2, BladesPerChassis: 1, NodesPerBMC: 1, SwitchesPerChassis: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

type recordingSink struct {
	mu     sync.Mutex
	events []Event
}

func (r *recordingSink) Emit(e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	return nil
}

func (r *recordingSink) all() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

func TestAPIListsSwitches(t *testing.T) {
	cluster := testCluster(t)
	srv := httptest.NewServer(NewManager(cluster).Handler())
	defer srv.Close()

	sink := &recordingSink{}
	mon := NewMonitor(srv.URL, nil, sink)
	if _, err := mon.PollOnce(time.Now()); err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(cluster)
	sw := mgr.Switches()
	if len(sw) != 16 {
		t.Fatalf("switches: %d", len(sw))
	}
	if sw[0].State != "ACTIVE" {
		t.Fatalf("%+v", sw[0])
	}
}

func TestMonitorEmitsPaperEvent(t *testing.T) {
	cluster := testCluster(t)
	srv := httptest.NewServer(NewManager(cluster).Handler())
	defer srv.Close()
	sink := &recordingSink{}
	mon := NewMonitor(srv.URL, nil, sink)

	ts := time.Unix(1646272077, 0)
	// First poll primes the baseline: no events.
	evs, err := mon.PollOnce(ts)
	if err != nil || len(evs) != 0 {
		t.Fatalf("prime: %v %v", evs, err)
	}
	// The switch of Fig. 7 goes UNKNOWN.
	if err := cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
		t.Fatal(err)
	}
	evs, err = mon.PollOnce(ts.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("events: %+v", evs)
	}
	want := "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"
	if evs[0].Line() != want {
		t.Fatalf("line = %q, want %q", evs[0].Line(), want)
	}
	if got := sink.all(); len(got) != 1 || got[0].Line() != want {
		t.Fatalf("sink: %+v", got)
	}
	// No change -> no new events.
	evs, _ = mon.PollOnce(ts.Add(2 * time.Minute))
	if len(evs) != 0 {
		t.Fatalf("steady state emitted: %+v", evs)
	}
	// Recovery emits an online event.
	_ = cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchActive)
	evs, _ = mon.PollOnce(ts.Add(3 * time.Minute))
	if len(evs) != 1 || evs[0].Problem != "fm_switch_online" || evs[0].Severity != "info" {
		t.Fatalf("recovery: %+v", evs)
	}
}

func TestMonitorMultipleChanges(t *testing.T) {
	cluster := testCluster(t)
	srv := httptest.NewServer(NewManager(cluster).Handler())
	defer srv.Close()
	sink := &recordingSink{}
	mon := NewMonitor(srv.URL, nil, sink)
	_, _ = mon.PollOnce(time.Now())
	_ = cluster.SetSwitchState("x1002c0r0b0", shasta.SwitchOffline)
	_ = cluster.SetSwitchState("x1002c0r1b0", shasta.SwitchDrained)
	evs, err := mon.PollOnce(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("%+v", evs)
	}
}

func TestMonitorAPIDown(t *testing.T) {
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close()
	mon := NewMonitor(url, nil, &recordingSink{})
	if _, err := mon.PollOnce(time.Now()); err == nil {
		t.Fatal("no error with API down")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	cluster := testCluster(t)
	srv := httptest.NewServer(NewManager(cluster).Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/fabric/switches", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
