package syslogd

import (
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"shastamon/internal/hms"
	"shastamon/internal/kafka"
)

func newBroker(t *testing.T) *kafka.Broker {
	t.Helper()
	b := kafka.NewBroker()
	if err := b.CreateTopic(hms.TopicSyslog, 2); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseFormatRoundTrip(t *testing.T) {
	ref := time.Date(2022, 3, 3, 0, 0, 0, 0, time.UTC)
	m := Message{
		Facility: 1, Severity: 2, Hostname: "nid001234", App: "mmfs",
		Text:      "GPFS: Disk failure detected on rg001 from nsd7. Unmounting file system fs1",
		Timestamp: time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC),
	}
	line := Format(m)
	if !strings.HasPrefix(line, "<10>Mar  3 01:47:57 nid001234 mmfs: ") {
		t.Fatalf("line: %q", line)
	}
	got, err := Parse(line, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("got %+v want %+v", got, m)
	}
	if got.SeverityName() != "crit" {
		t.Fatalf("severity name %q", got.SeverityName())
	}
}

func TestParseAppWithPID(t *testing.T) {
	m, err := Parse("<13>Mar  3 01:00:00 nid000001 sshd[4221]: Accepted publickey", time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if m.App != "sshd" {
		t.Fatalf("app %q", m.App)
	}
}

func TestParseErrors(t *testing.T) {
	ref := time.Now()
	for _, in := range []string{
		"no pri",
		"<999>Mar  3 01:00:00 h a: x",
		"<13>short",
		"<13>Xxx  3 01:00:00 h a: x",
		"<13>Mar  3 01:00:00 hostonly",
		"<13>Mar  3 01:00:00 host notag",
	} {
		if _, err := Parse(in, ref); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestAggregatorProducesToKafka(t *testing.T) {
	b := newBroker(t)
	agg := NewAggregator(b)
	m := GPFSDiskFailure("nid001234", 1, 7, time.Unix(100, 0).UTC())
	if err := agg.Ingest(m); err != nil {
		t.Fatal(err)
	}
	var msgs []kafka.Message
	for p := 0; p < 2; p++ {
		got, _ := b.Fetch(hms.TopicSyslog, p, 0, 10)
		msgs = append(msgs, got...)
	}
	if len(msgs) != 1 {
		t.Fatalf("messages: %d", len(msgs))
	}
	var back Message
	if err := json.Unmarshal(msgs[0].Value, &back); err != nil {
		t.Fatal(err)
	}
	if back.App != "mmfs" || !strings.Contains(back.Text, "Disk failure") {
		t.Fatalf("%+v", back)
	}
	rcv, drop := agg.Stats()
	if rcv != 1 || drop != 0 {
		t.Fatalf("stats %d %d", rcv, drop)
	}
}

func TestAggregatorDropsMalformed(t *testing.T) {
	b := newBroker(t)
	agg := NewAggregator(b)
	if err := agg.IngestLine("garbage", time.Now()); err == nil {
		t.Fatal("garbage accepted")
	}
	_, drop := agg.Stats()
	if drop != 1 {
		t.Fatalf("dropped = %d", drop)
	}
}

func TestTCPServe(t *testing.T) {
	b := newBroker(t)
	agg := NewAggregator(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- agg.Serve(ctx, l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		Format(GPFSDiskFailure("nid000001", 2, 3, time.Now().UTC())),
		"<13>Mar  3 01:00:00 nid000002 slurmd: launch task",
	}
	if _, err := conn.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.After(2 * time.Second)
	for {
		rcv, _ := agg.Stats()
		if rcv == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d received", rcv)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []Message {
		g := NewGenerator(5, "nid000001", "nid000002")
		var out []Message
		for i := 0; i < 50; i++ {
			out = append(out, g.Next(time.Unix(int64(i), 0)))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	// All hosts and several apps appear.
	apps := map[string]bool{}
	for _, m := range a {
		apps[m.App] = true
	}
	if len(apps) < 3 {
		t.Fatalf("apps: %v", apps)
	}
}

// Property: format/parse round-trips for all valid facility/severity.
func TestPropertyPriRoundTrip(t *testing.T) {
	ref := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	f := func(fac, sev uint8) bool {
		m := Message{
			Facility: int(fac) % 24, Severity: int(sev) % 8,
			Hostname: "host1", App: "app",
			Text:      "hello world",
			Timestamp: time.Date(2022, 6, 1, 12, 30, 15, 0, time.UTC),
		}
		got, err := Parse(Format(m), ref)
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	line := "<10>Mar  3 01:47:57 nid001234 mmfs: GPFS: Disk failure detected on rg001 from nsd7. Unmounting file system fs1"
	ref := time.Now()
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(line, ref); err != nil {
			b.Fatal(err)
		}
	}
}
